#include "dtw/pair_restore.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_harness/suite.hpp"
#include "core/trace_extender.hpp"
#include "geom/distance.hpp"
#include "layout/drc_checker.hpp"
#include "workload/diffpair_cases.hpp"

namespace lmr::dtw {
namespace {

/// Smallest distance from `p` to any segment of `path`.
double dist_to_path(const geom::Point& p, const geom::Polyline& path) {
  double d = 1e18;
  for (std::size_t j = 0; j < path.segment_count(); ++j) {
    d = std::min(d, geom::dist_point_segment(p, path.segment(j)));
  }
  return d;
}

TEST(MergePair, CoupledPairMedianBetweenSubTraces) {
  const auto c = workload::coupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  ASSERT_GE(m.median.path.size(), 3u);
  // Median length is between the two sub-trace lengths (inner vs outer
  // corner radii).
  const double lp = c.pair.positive.path.length();
  const double ln = c.pair.negative.path.length();
  const double lm = m.median.path.length();
  EXPECT_GE(lm, std::min(lp, ln) - 1e-6);
  EXPECT_LE(lm, std::max(lp, ln) + 1e-6);
}

TEST(MergePair, VirtualRulesWidened) {
  const auto c = workload::coupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  EXPECT_NEAR(m.virtual_rules.trace_width,
              c.sub_rules.trace_width + c.pair.pitch, 1e-12);
  EXPECT_GT(m.virtual_rules.effective_gap(), c.sub_rules.effective_gap());
}

TEST(MergePair, DecoupledPairDropsTinyPatternLength) {
  const auto c = workload::decoupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  // The median must not inherit the tiny pattern detour: its length is close
  // to the P length (no pattern), not the N length (pattern adds 0.6).
  EXPECT_LT(m.median.path.length(), c.pair.negative.path.length());
  EXPECT_GT(m.skipped_n_length, 0.0);
}

TEST(RestorePair, StraightMedianRoundTrip) {
  layout::Trace median;
  median.id = 9;
  median.name = "m";
  median.path = geom::Polyline{{{0, 0}, {20, 0}}};
  const layout::DiffPair pair = restore_pair(median, 0.8, 0.15);
  EXPECT_NEAR(pair.positive.path[0].y, 0.4, 1e-12);
  EXPECT_NEAR(pair.negative.path[0].y, -0.4, 1e-12);
  EXPECT_NEAR(pair.positive.path.length(), 20.0, 1e-9);
  EXPECT_NEAR(pair.negative.path.length(), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(pair.pitch, 0.8);
}

TEST(RestorePair, CorneredMedianKeepsPitchOnSegments) {
  layout::Trace median;
  median.path = geom::Polyline{{{0, 0}, {10, 0}, {10, 10}}};
  const layout::DiffPair pair = restore_pair(median, 1.0, 0.1);
  // Mid-segment perpendicular distance between sub-traces equals the pitch.
  const geom::Segment p0 = pair.positive.path.segment(0);
  const geom::Segment n0 = pair.negative.path.segment(0);
  EXPECT_NEAR(geom::dist_segment_segment(p0, n0), 1.0, 1e-9);
}

TEST(RestorePair, MeanderedMedianStaysParallel) {
  layout::Trace median;
  median.path = geom::Polyline{
      {{0, 0}, {4, 0}, {4, 3}, {7, 3}, {7, 0}, {12, 0}}};
  const layout::DiffPair pair = restore_pair(median, 0.6, 0.1);
  // Sub-traces do not self-intersect.
  EXPECT_FALSE(pair.positive.path.self_intersects());
  EXPECT_FALSE(pair.negative.path.self_intersects());
  // A symmetric U-meander has two left and two right turns, so inner/outer
  // corner effects cancel: both sub-traces match the median length.
  EXPECT_NEAR(pair.positive.path.length(), median.path.length(), 1e-9);
  EXPECT_NEAR(pair.negative.path.length(), median.path.length(), 1e-9);
  // Pitch maintained on every straight run.
  for (std::size_t i = 0; i < pair.positive.path.segment_count(); ++i) {
    const geom::Point mid = pair.positive.path.segment(i).midpoint();
    double d = 1e18;
    for (std::size_t j = 0; j < pair.negative.path.segment_count(); ++j) {
      d = std::min(d, geom::dist_point_segment(mid, pair.negative.path.segment(j)));
    }
    EXPECT_NEAR(d, 0.6, 1e-6) << "segment " << i;
  }
}

TEST(MergePair, NodePitchAttributionKeepsDraMarkers) {
  // The decoupled case crosses two DRAs (0.8 then 2.4). The merged median
  // must carry one pitch per node, and the transition markers must survive
  // simplification even though the median is one straight line there.
  const auto c = workload::decoupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  ASSERT_EQ(m.node_pitch.size(), m.median.path.size());
  EXPECT_DOUBLE_EQ(m.base_pitch, c.pair.pitch);
  const bool has_narrow = std::count(m.node_pitch.begin(), m.node_pitch.end(), 0.8) > 0;
  const bool has_wide = std::count(m.node_pitch.begin(), m.node_pitch.end(), 2.4) > 0;
  EXPECT_TRUE(has_narrow);
  EXPECT_TRUE(has_wide);
  // Breakout originals recorded for verbatim re-anchoring.
  ASSERT_EQ(m.breakout_p.size(), c.pair.breakout_nodes);
  ASSERT_EQ(m.breakout_n.size(), c.pair.breakout_nodes);
  EXPECT_TRUE(geom::almost_equal(m.breakout_p[0], c.pair.positive.path[0]));
  EXPECT_TRUE(geom::almost_equal(m.breakout_n[0], c.pair.negative.path[0]));
}

TEST(RestorePair, PiecewisePitchRestoresEachSectionAtItsRule) {
  // Acceptance criterion of the multi-pitch restore: a wide-DRA section must
  // restore at its own rule, not the base pitch.
  layout::Trace median;
  median.path = geom::Polyline{{{0, 0}, {20, 0}, {24, 0}, {44, 0}}};
  const std::vector<double> node_pitch{0.8, 0.8, 2.0, 2.0};
  RestoreSpec spec;
  spec.pitch = 0.8;
  spec.sub_width = 0.15;
  spec.node_pitch = node_pitch;
  const layout::DiffPair pair = restore_pair(median, spec);
  // Mid-narrow-section separation equals the narrow rule.
  const geom::Point p_narrow = pair.positive.path.point_at_arclength(10.0);
  EXPECT_NEAR(p_narrow.y, 0.4, 1e-9);
  EXPECT_NEAR(dist_to_path(p_narrow, pair.negative.path), 0.8, 1e-9);
  // Mid-wide-section separation equals the wide rule — NOT the base pitch.
  const geom::Point p_wide{34.0, pair.positive.path.back().y};
  EXPECT_NEAR(p_wide.y, 1.0, 1e-9);
  EXPECT_NEAR(dist_to_path(p_wide, pair.negative.path), 2.0, 1e-9);
  // The transition is a straight taper between the two offsets.
  EXPECT_FALSE(pair.positive.path.self_intersects());
  EXPECT_FALSE(pair.negative.path.self_intersects());
}

TEST(RestorePair, UniformNodePitchMatchesClassicOffset) {
  layout::Trace median;
  median.path = geom::Polyline{{{0, 0}, {4, 0}, {4, 3}, {7, 3}, {7, 0}, {12, 0}}};
  const layout::DiffPair classic = restore_pair(median, 0.6, 0.1);
  const std::vector<double> node_pitch(median.path.size(), 0.6);
  RestoreSpec spec;
  spec.pitch = 0.6;
  spec.sub_width = 0.1;
  spec.node_pitch = node_pitch;
  const layout::DiffPair piecewise = restore_pair(median, spec);
  ASSERT_EQ(piecewise.positive.path.size(), classic.positive.path.size());
  ASSERT_EQ(piecewise.negative.path.size(), classic.negative.path.size());
  for (std::size_t i = 0; i < classic.positive.path.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(piecewise.positive.path[i], classic.positive.path[i], 1e-9));
    EXPECT_TRUE(geom::almost_equal(piecewise.negative.path[i], classic.negative.path[i], 1e-9));
  }
}

TEST(RestorePair, BreakoutAnchoredVerbatim) {
  // The breakout is NOT pitch-separated: averaged-then-offset restoration
  // would drift the endpoints off the pins; the spec re-anchors them.
  layout::DiffPair pair;
  pair.name = "anchored";
  pair.pitch = 0.8;
  pair.breakout_nodes = 1;
  pair.positive.width = 0.15;
  pair.negative.width = 0.15;
  pair.positive.path = geom::Polyline{{{0, 0.7}, {2, 0.4}, {20, 0.4}}};
  pair.negative.path = geom::Polyline{{{0, -0.4}, {2, -0.4}, {20, -0.4}}};
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.protect = 0.3;
  rules.trace_width = 0.15;
  const MergedPair m = merge_pair(pair, rules, {0.8});
  RestoreSpec spec;
  spec.pitch = pair.pitch;
  spec.sub_width = 0.15;
  spec.node_pitch = m.node_pitch;
  spec.breakout_p = m.breakout_p;
  spec.breakout_n = m.breakout_n;
  const layout::DiffPair restored = restore_pair(m.median, spec);
  EXPECT_TRUE(geom::almost_equal(restored.positive.path[0], {0.0, 0.7}, 1e-9));
  EXPECT_TRUE(geom::almost_equal(restored.negative.path[0], {0.0, -0.4}, 1e-9));
  // Without the anchors the endpoint drifts (the breakout separation is 1.1,
  // not the pitch): the averaged node offsets to y ~ 0.15 + 0.4, off the pin.
  const layout::DiffPair drifted = restore_pair(m.median, m.base_pitch, 0.15);
  EXPECT_GT(std::abs(drifted.positive.path[0].y - 0.7), 0.1);
}

TEST(TransferNodePitch, PatternNodesInheritHostSegmentDra) {
  const geom::Polyline reference{{{0, 0}, {10, 0}, {14, 0}, {24, 0}}};
  const std::vector<double> ref_pitch{0.8, 0.8, 2.0, 2.0};
  // The extender meandered both sections: bump over the narrow host, bump
  // over the wide host; original nodes survive verbatim.
  const geom::Polyline extended{{{0, 0}, {2, 0}, {2, 3}, {5, 3}, {5, 0}, {10, 0},
                                 {14, 0}, {16, 0}, {16, 2}, {20, 2}, {20, 0}, {24, 0}}};
  const std::vector<double> q = transfer_node_pitch(reference, ref_pitch, extended);
  ASSERT_EQ(q.size(), extended.size());
  for (std::size_t i = 0; i <= 5; ++i) EXPECT_DOUBLE_EQ(q[i], 0.8) << i;
  for (std::size_t i = 6; i < q.size(); ++i) EXPECT_DOUBLE_EQ(q[i], 2.0) << i;
}

TEST(TransferNodePitch, LocalRestorePitchProbesWidestAlongSegment) {
  const geom::Polyline reference{{{0, 0}, {10, 0}, {14, 0}, {24, 0}}};
  const std::vector<double> ref_pitch{0.8, 0.8, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(local_restore_pitch(reference, ref_pitch, {{2, 0}, {8, 0}}), 0.8);
  EXPECT_DOUBLE_EQ(local_restore_pitch(reference, ref_pitch, {{16, 0}, {22, 0}}), 2.0);
  // A segment spanning the transition takes the widest rule it touches.
  EXPECT_DOUBLE_EQ(local_restore_pitch(reference, ref_pitch, {{8, 0}, {12, 0}}), 2.0);
}

TEST(CompensateSkew, InsertsTinyPatternOnShorter) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};     // 30
  pair.negative.path = geom::Polyline{
      {{0, -0.4}, {5, -0.4}, {5, -2.4}, {9, -2.4}, {9, -0.4}, {30, -0.4}}};  // 34
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.obs = 0.4;
  rules.protect = 0.3;
  rules.trace_width = 0.15;
  const double before = std::abs(pair.positive.path.length() - pair.negative.path.length());
  const double after = compensate_skew(pair, rules);
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, 0.0, 1e-9);
}

TEST(CompensateSkew, NegligibleSkewLeftAlone) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};
  pair.negative.path = geom::Polyline{{{0, -0.4}, {30.2, -0.4}}};
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.protect = 0.3;
  const std::size_t nodes_before = pair.positive.path.size();
  compensate_skew(pair, rules);
  EXPECT_EQ(pair.positive.path.size(), nodes_before);  // nothing inserted
}

TEST(CompensateSkew, ObstacleOverLongestHostFallsBackToNextLongest) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  // Shorter trace (P) has two straight hosts: [0,20] and [20,30].
  pair.positive.path = geom::Polyline{{{0, 0.4}, {20, 0.4}, {30, 0.4}}};
  pair.negative.path = geom::Polyline{
      {{0, -0.4}, {5, -0.4}, {5, -2.4}, {9, -2.4}, {9, -0.4}, {30, -0.4}}};  // 34
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.obs = 0.4;
  rules.protect = 0.3;
  rules.trace_width = 0.15;
  // A via sits right where the blind splice would put the hat (host mid at
  // x = 10, hat height = skew/2 = 2 above the trace).
  const std::vector<layout::Obstacle> obstacles{
      {geom::Polygon::rect({{8.0, 1.2}, {12.0, 2.2}}), "via"}};
  const double before = std::abs(pair.positive.path.length() - pair.negative.path.length());
  const double after = compensate_skew(pair, rules, nullptr, &obstacles);
  EXPECT_NEAR(after, 0.0, 1e-9);
  EXPECT_LT(after, before);
  // The pattern landed on the second host (x > 20), not under the via.
  double hat_x = -1.0;
  for (const geom::Point& p : pair.positive.path.points()) {
    if (p.y > 2.0) hat_x = std::max(hat_x, p.x);
  }
  EXPECT_GT(hat_x, 20.0);
  // And the relocated pattern really clears the obstacle.
  const layout::DrcChecker checker;
  EXPECT_TRUE(checker.check_obstacles(pair.positive, rules, obstacles).empty());
}

TEST(CompensateSkew, MiteredRulesChamferTheHat) {
  // With d_miter > 0 the oracle rejects right-angle corners, so the hat must
  // be chamfered (and sized for the chamfer's length trade) instead of every
  // host being vetoed by the pattern's own corners.
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};
  pair.negative.path = geom::Polyline{{{0, -0.4}, {34, -0.4}}};
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.obs = 0.4;
  rules.protect = 0.3;
  rules.miter = 0.3;
  rules.trace_width = 0.15;
  const double after = compensate_skew(pair, rules);
  EXPECT_LT(after, 1.0);  // chamfer clamping may leave a small residual
  const layout::DrcChecker checker;
  const auto v = checker.check_trace(pair.positive, rules);
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : layout::to_string(v[0].kind));
}

TEST(CompensateSkew, NoLegalHostLeavesPathUntouched) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};
  pair.negative.path = geom::Polyline{
      {{0, -0.4}, {5, -0.4}, {5, -2.4}, {9, -2.4}, {9, -0.4}, {30, -0.4}}};
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.obs = 0.4;
  rules.protect = 0.3;
  rules.trace_width = 0.15;
  // The routing area ends just above the trace: the hat (2 high) cannot fit
  // anywhere, so the path must stay untouched instead of leaving the area.
  layout::RoutableArea area;
  area.outline = geom::Polygon::rect({{-1.0, -3.0}, {31.0, 1.0}});
  const std::size_t nodes_before = pair.positive.path.size();
  const double before = std::abs(pair.positive.path.length() - pair.negative.path.length());
  const double after = compensate_skew(pair, rules, &area);
  EXPECT_DOUBLE_EQ(after, before);
  EXPECT_EQ(pair.positive.path.size(), nodes_before);
}

/// Satellite oracle helper: route a whole scenario family end to end
/// (merge -> extend -> restore for every differential member) and assert the
/// sub-trace oracle accepts every case — under the given DRC schedule and
/// parallelism, which must not change the verdict.
void expect_family_restore_clean(const std::string& family,
                                 pipeline::DrcSchedule schedule, std::size_t threads) {
  bench::SuiteOptions opts;
  opts.smoke = false;  // the full family, including Table I case 5
  opts.families = {family};
  opts.threads = threads;
  opts.router.drc_schedule = schedule;
  const bench::Suite suite(opts);
  const bench::SuiteResult result = suite.run();
  ASSERT_FALSE(result.cases.empty());
  for (const bench::CaseOutcome& c : result.cases) {
    EXPECT_TRUE(c.drc_clean()) << c.scenario << ": oracle rejected restored traces";
    EXPECT_TRUE(c.ok()) << c.scenario << ": family gate failed";
  }
}

TEST(PairRestoreOracle, PairCorridorsOverlappedSerial) {
  expect_family_restore_clean("pair_corridors", pipeline::DrcSchedule::Overlapped, 1);
}
TEST(PairRestoreOracle, PairCorridorsOverlappedThreaded) {
  expect_family_restore_clean("pair_corridors", pipeline::DrcSchedule::Overlapped, 4);
}
TEST(PairRestoreOracle, PairCorridorsBarrierSerial) {
  expect_family_restore_clean("pair_corridors", pipeline::DrcSchedule::Barrier, 1);
}
TEST(PairRestoreOracle, PairCorridorsBarrierThreaded) {
  expect_family_restore_clean("pair_corridors", pipeline::DrcSchedule::Barrier, 4);
}
TEST(PairRestoreOracle, Table1OverlappedSerial) {
  expect_family_restore_clean("table1", pipeline::DrcSchedule::Overlapped, 1);
}
TEST(PairRestoreOracle, Table1OverlappedThreaded) {
  expect_family_restore_clean("table1", pipeline::DrcSchedule::Overlapped, 4);
}
TEST(PairRestoreOracle, Table1BarrierSerial) {
  expect_family_restore_clean("table1", pipeline::DrcSchedule::Barrier, 1);
}
TEST(PairRestoreOracle, Table1BarrierThreaded) {
  expect_family_restore_clean("table1", pipeline::DrcSchedule::Barrier, 4);
}

TEST(FullRoundTrip, MergeExtendRestoreIsDrcClean) {
  // The MSDTW pipeline end to end on the decoupled case: merge, length-match
  // the median, restore, compensate; the restored pair must be coupled and
  // roughly at target.
  auto c = workload::decoupled_pair_case();
  MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  const double target = m.median.path.length() + 14.0;
  core::TraceExtender ext(m.virtual_rules, c.area);
  const core::ExtendStats stats = ext.extend(m.median, target);
  EXPECT_TRUE(stats.reached) << stats.final_length;
  layout::DiffPair restored = restore_pair(m.median, c.pair.pitch, c.sub_rules.trace_width);
  compensate_skew(restored, c.sub_rules);
  const double lp = restored.positive.path.length();
  const double ln = restored.negative.path.length();
  EXPECT_NEAR(lp, ln, c.sub_rules.protect * 2.0 + 1e-6);
  // Sub-traces keep the pair pitch along straight runs (spot check at a few
  // arc-length samples).
  EXPECT_FALSE(restored.positive.path.self_intersects());
  EXPECT_FALSE(restored.negative.path.self_intersects());
}

}  // namespace
}  // namespace lmr::dtw
