#include "dtw/pair_restore.hpp"

#include <gtest/gtest.h>

#include "core/trace_extender.hpp"
#include "geom/distance.hpp"
#include "layout/drc_checker.hpp"
#include "workload/diffpair_cases.hpp"

namespace lmr::dtw {
namespace {

TEST(MergePair, CoupledPairMedianBetweenSubTraces) {
  const auto c = workload::coupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  ASSERT_GE(m.median.path.size(), 3u);
  // Median length is between the two sub-trace lengths (inner vs outer
  // corner radii).
  const double lp = c.pair.positive.path.length();
  const double ln = c.pair.negative.path.length();
  const double lm = m.median.path.length();
  EXPECT_GE(lm, std::min(lp, ln) - 1e-6);
  EXPECT_LE(lm, std::max(lp, ln) + 1e-6);
}

TEST(MergePair, VirtualRulesWidened) {
  const auto c = workload::coupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  EXPECT_NEAR(m.virtual_rules.trace_width,
              c.sub_rules.trace_width + c.pair.pitch, 1e-12);
  EXPECT_GT(m.virtual_rules.effective_gap(), c.sub_rules.effective_gap());
}

TEST(MergePair, DecoupledPairDropsTinyPatternLength) {
  const auto c = workload::decoupled_pair_case();
  const MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  // The median must not inherit the tiny pattern detour: its length is close
  // to the P length (no pattern), not the N length (pattern adds 0.6).
  EXPECT_LT(m.median.path.length(), c.pair.negative.path.length());
  EXPECT_GT(m.skipped_n_length, 0.0);
}

TEST(RestorePair, StraightMedianRoundTrip) {
  layout::Trace median;
  median.id = 9;
  median.name = "m";
  median.path = geom::Polyline{{{0, 0}, {20, 0}}};
  const layout::DiffPair pair = restore_pair(median, 0.8, 0.15);
  EXPECT_NEAR(pair.positive.path[0].y, 0.4, 1e-12);
  EXPECT_NEAR(pair.negative.path[0].y, -0.4, 1e-12);
  EXPECT_NEAR(pair.positive.path.length(), 20.0, 1e-9);
  EXPECT_NEAR(pair.negative.path.length(), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(pair.pitch, 0.8);
}

TEST(RestorePair, CorneredMedianKeepsPitchOnSegments) {
  layout::Trace median;
  median.path = geom::Polyline{{{0, 0}, {10, 0}, {10, 10}}};
  const layout::DiffPair pair = restore_pair(median, 1.0, 0.1);
  // Mid-segment perpendicular distance between sub-traces equals the pitch.
  const geom::Segment p0 = pair.positive.path.segment(0);
  const geom::Segment n0 = pair.negative.path.segment(0);
  EXPECT_NEAR(geom::dist_segment_segment(p0, n0), 1.0, 1e-9);
}

TEST(RestorePair, MeanderedMedianStaysParallel) {
  layout::Trace median;
  median.path = geom::Polyline{
      {{0, 0}, {4, 0}, {4, 3}, {7, 3}, {7, 0}, {12, 0}}};
  const layout::DiffPair pair = restore_pair(median, 0.6, 0.1);
  // Sub-traces do not self-intersect.
  EXPECT_FALSE(pair.positive.path.self_intersects());
  EXPECT_FALSE(pair.negative.path.self_intersects());
  // A symmetric U-meander has two left and two right turns, so inner/outer
  // corner effects cancel: both sub-traces match the median length.
  EXPECT_NEAR(pair.positive.path.length(), median.path.length(), 1e-9);
  EXPECT_NEAR(pair.negative.path.length(), median.path.length(), 1e-9);
  // Pitch maintained on every straight run.
  for (std::size_t i = 0; i < pair.positive.path.segment_count(); ++i) {
    const geom::Point mid = pair.positive.path.segment(i).midpoint();
    double d = 1e18;
    for (std::size_t j = 0; j < pair.negative.path.segment_count(); ++j) {
      d = std::min(d, geom::dist_point_segment(mid, pair.negative.path.segment(j)));
    }
    EXPECT_NEAR(d, 0.6, 1e-6) << "segment " << i;
  }
}

TEST(CompensateSkew, InsertsTinyPatternOnShorter) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};     // 30
  pair.negative.path = geom::Polyline{
      {{0, -0.4}, {5, -0.4}, {5, -2.4}, {9, -2.4}, {9, -0.4}, {30, -0.4}}};  // 34
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.obs = 0.4;
  rules.protect = 0.3;
  rules.trace_width = 0.15;
  const double before = std::abs(pair.positive.path.length() - pair.negative.path.length());
  const double after = compensate_skew(pair, rules);
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, 0.0, 1e-9);
}

TEST(CompensateSkew, NegligibleSkewLeftAlone) {
  layout::DiffPair pair;
  pair.pitch = 0.8;
  pair.positive.path = geom::Polyline{{{0, 0.4}, {30, 0.4}}};
  pair.negative.path = geom::Polyline{{{0, -0.4}, {30.2, -0.4}}};
  drc::DesignRules rules;
  rules.gap = 0.6;
  rules.protect = 0.3;
  const std::size_t nodes_before = pair.positive.path.size();
  compensate_skew(pair, rules);
  EXPECT_EQ(pair.positive.path.size(), nodes_before);  // nothing inserted
}

TEST(FullRoundTrip, MergeExtendRestoreIsDrcClean) {
  // The MSDTW pipeline end to end on the decoupled case: merge, length-match
  // the median, restore, compensate; the restored pair must be coupled and
  // roughly at target.
  auto c = workload::decoupled_pair_case();
  MergedPair m = merge_pair(c.pair, c.sub_rules, c.rule_set);
  const double target = m.median.path.length() + 14.0;
  core::TraceExtender ext(m.virtual_rules, c.area);
  const core::ExtendStats stats = ext.extend(m.median, target);
  EXPECT_TRUE(stats.reached) << stats.final_length;
  layout::DiffPair restored = restore_pair(m.median, c.pair.pitch, c.sub_rules.trace_width);
  compensate_skew(restored, c.sub_rules);
  const double lp = restored.positive.path.length();
  const double ln = restored.negative.path.length();
  EXPECT_NEAR(lp, ln, c.sub_rules.protect * 2.0 + 1e-6);
  // Sub-traces keep the pair pitch along straight runs (spot check at a few
  // arc-length samples).
  EXPECT_FALSE(restored.positive.path.self_intersects());
  EXPECT_FALSE(restored.negative.path.self_intersects());
}

}  // namespace
}  // namespace lmr::dtw
