#include "dtw/dtw.hpp"

#include <gtest/gtest.h>

namespace lmr::dtw {
namespace {

using geom::Point;

TEST(Dtw, EmptyInputs) {
  EXPECT_TRUE(dtw_match({}, {}).pairs.empty());
  const std::vector<Point> a{{0, 0}};
  EXPECT_TRUE(dtw_match(a, {}).pairs.empty());
}

TEST(Dtw, IdenticalSequencesMatchDiagonally) {
  const std::vector<Point> a{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const DtwResult r = dtw_match(a, a);
  ASSERT_EQ(r.pairs.size(), 4u);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.pairs[i].ip, i);
    EXPECT_EQ(r.pairs[i].in, i);
  }
}

TEST(Dtw, ParallelOffsetSequences) {
  const std::vector<Point> p{{0, 0.4}, {5, 0.4}, {10, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {5, -0.4}, {10, -0.4}};
  const DtwResult r = dtw_match(p, n);
  ASSERT_EQ(r.pairs.size(), 3u);
  EXPECT_NEAR(r.total_cost, 3 * 0.8, 1e-12);
  for (const MatchPair& m : r.pairs) EXPECT_NEAR(m.cost, 0.8, 1e-12);
}

TEST(Dtw, ManyToOneAtCornerCluster) {
  // Three near-coincident corner nodes on P vs one ideal node on N
  // (Fig. 10a): all three must map onto the single corner.
  const std::vector<Point> p{{0, 0.4}, {9.8, 0.4}, {10.0, 0.42}, {10.2, 0.4}, {20, 0.4}};
  const std::vector<Point> n{{0, -0.4}, {10, -0.4}, {20, -0.4}};
  const DtwResult r = dtw_match(p, n);
  // Every node appears in some pair.
  std::vector<bool> p_seen(p.size(), false), n_seen(n.size(), false);
  for (const MatchPair& m : r.pairs) {
    p_seen[m.ip] = true;
    n_seen[m.in] = true;
  }
  for (bool b : p_seen) EXPECT_TRUE(b);
  for (bool b : n_seen) EXPECT_TRUE(b);
  // The cluster nodes 1..3 of P all match N node 1.
  for (const MatchPair& m : r.pairs) {
    if (m.ip >= 1 && m.ip <= 3) {
      EXPECT_EQ(m.in, 1u);
    }
  }
}

TEST(Dtw, MonotoneNonCrossing) {
  const std::vector<Point> p{{0, 0}, {3, 0}, {7, 0}, {12, 0}, {20, 0}};
  const std::vector<Point> n{{0, 1}, {4, 1}, {11, 1}, {20, 1}};
  const DtwResult r = dtw_match(p, n);
  for (std::size_t k = 1; k < r.pairs.size(); ++k) {
    EXPECT_GE(r.pairs[k].ip, r.pairs[k - 1].ip);
    EXPECT_GE(r.pairs[k].in, r.pairs[k - 1].in);
  }
}

TEST(Dtw, EndpointsAlwaysMatched) {
  const std::vector<Point> p{{0, 0}, {5, 0}, {9, 0}};
  const std::vector<Point> n{{0, 1}, {4, 1}, {9, 1}, {9.5, 1}};
  const DtwResult r = dtw_match(p, n);
  EXPECT_EQ(r.pairs.front().ip, 0u);
  EXPECT_EQ(r.pairs.front().in, 0u);
  EXPECT_EQ(r.pairs.back().ip, p.size() - 1);
  EXPECT_EQ(r.pairs.back().in, n.size() - 1);
}

TEST(Dtw, CostIsMinimal) {
  // Hand-checkable 2x2: straight diagonal matching is optimal.
  const std::vector<Point> p{{0, 0}, {10, 0}};
  const std::vector<Point> n{{0, 2}, {10, 2}};
  const DtwResult r = dtw_match(p, n);
  EXPECT_NEAR(r.total_cost, 4.0, 1e-12);
  ASSERT_EQ(r.pairs.size(), 2u);
}

}  // namespace
}  // namespace lmr::dtw
