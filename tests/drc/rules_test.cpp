#include "drc/rules.hpp"

#include <gtest/gtest.h>

namespace lmr::drc {
namespace {

TEST(DesignRules, EffectiveValues) {
  DesignRules r;
  r.gap = 2.0;
  r.obs = 1.5;
  r.protect = 1.0;
  r.trace_width = 0.5;
  EXPECT_DOUBLE_EQ(r.effective_gap(), 2.5);
  EXPECT_DOUBLE_EQ(r.effective_obs(), 1.75);
  EXPECT_DOUBLE_EQ(r.ura_halfwidth(), 1.25);
}

TEST(DesignRules, ObstacleInflationPositiveWhenObsDominates) {
  DesignRules r;
  r.gap = 1.0;
  r.obs = 2.0;
  r.protect = 0.5;
  r.trace_width = 0.0;
  // effective_obs = 2.0, ura_half = 0.5 -> inflation 1.5.
  EXPECT_DOUBLE_EQ(r.obstacle_inflation(), 1.5);
}

TEST(DesignRules, ObstacleInflationClampedAtZero) {
  DesignRules r;
  r.gap = 4.0;
  r.obs = 1.0;
  r.protect = 1.0;
  // ura_half = 2.0 already exceeds effective_obs = 1.0.
  EXPECT_DOUBLE_EQ(r.obstacle_inflation(), 0.0);
}

TEST(DesignRules, ValidateRejectsBadValues) {
  DesignRules r;
  r.gap = 0.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.gap = 1.0;
  r.protect = -1.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.protect = 0.5;
  r.obs = -0.1;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.obs = 0.0;
  r.trace_width = -1.0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r.trace_width = 0.0;
  EXPECT_NO_THROW(r.validate());
  r.protect = 100.0;  // >> gap
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(Quantize, ExactMultiplesUnchanged) {
  DesignRules r;
  r.gap = 2.0;
  r.protect = 1.0;
  r.trace_width = 0.0;
  const QuantizedRules q = quantize(r, 0.5);
  EXPECT_EQ(q.gap_steps, 4);
  EXPECT_EQ(q.protect_steps, 2);
  EXPECT_DOUBLE_EQ(q.rules.gap, 2.0);
  EXPECT_DOUBLE_EQ(q.rules.protect, 1.0);
}

TEST(Quantize, RoundsUpNeverLoosens) {
  DesignRules r;
  r.gap = 2.1;
  r.protect = 0.9;
  const QuantizedRules q = quantize(r, 0.5);
  EXPECT_EQ(q.gap_steps, 5);      // ceil(2.1/0.5)
  EXPECT_EQ(q.protect_steps, 2);  // ceil(0.9/0.5)
  EXPECT_GE(q.rules.gap, r.gap);
  EXPECT_GE(q.rules.protect, r.protect);
}

TEST(Quantize, WidthFoldedIntoGapSteps) {
  DesignRules r;
  r.gap = 2.0;
  r.trace_width = 1.0;  // effective gap 3.0
  r.protect = 1.0;
  const QuantizedRules q = quantize(r, 1.0);
  EXPECT_EQ(q.gap_steps, 3);
}

TEST(Quantize, RejectsNonPositiveStep) {
  DesignRules r;
  EXPECT_THROW((void)quantize(r, 0.0), std::invalid_argument);
  EXPECT_THROW((void)quantize(r, -1.0), std::invalid_argument);
}

TEST(VirtualPairRules, WidthCarriesBand) {
  DesignRules sub;
  sub.gap = 1.0;
  sub.obs = 1.0;
  sub.protect = 0.5;
  sub.trace_width = 0.2;
  const DesignRules v = virtual_pair_rules(sub, 0.8);
  EXPECT_DOUBLE_EQ(v.trace_width, 1.0);  // 0.2 + 0.8
  EXPECT_DOUBLE_EQ(v.gap, sub.gap);
  // Effective gap grows by the pair pitch -> restored sub-traces keep rules.
  EXPECT_DOUBLE_EQ(v.effective_gap(), sub.effective_gap() + 0.8);
}

TEST(RestoreMargin, WiderLocalPitchDemandsExtraRoom) {
  DesignRules sub;
  sub.gap = 1.2;
  sub.obs = 0.6;
  sub.protect = 0.6;
  sub.trace_width = 0.25;
  const RestoreMargin m = restore_margin(sub, 0.8, 2.0);
  // Clearance grows by half the pitch difference per side (the restored
  // sub-trace reaches that much further), spacing by the full difference
  // (same-side runs of the inner sub-trace close in by the local pitch).
  EXPECT_DOUBLE_EQ(m.clearance, 0.6);
  EXPECT_DOUBLE_EQ(m.spacing, 1.2);
}

TEST(RestoreMargin, BasePitchRegionNeedsNoMargin) {
  DesignRules sub;
  sub.gap = 1.2;
  sub.protect = 0.6;
  const RestoreMargin m = restore_margin(sub, 0.8, 0.8);
  EXPECT_DOUBLE_EQ(m.clearance, 0.0);
  EXPECT_DOUBLE_EQ(m.spacing, 0.0);
  // Narrower-than-base restores only relax rules.
  const RestoreMargin narrow = restore_margin(sub, 0.8, 0.5);
  EXPECT_DOUBLE_EQ(narrow.clearance, 0.0);
  EXPECT_DOUBLE_EQ(narrow.spacing, 0.0);
}

TEST(RestoreMargin, RejectsDegeneratePitches) {
  DesignRules sub;
  EXPECT_THROW((void)restore_margin(sub, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)restore_margin(sub, 1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace lmr::drc
