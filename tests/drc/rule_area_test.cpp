#include "drc/rule_area.hpp"

#include <gtest/gtest.h>

namespace lmr::drc {
namespace {

DesignRules base_rules() {
  DesignRules r;
  r.gap = 1.0;
  r.obs = 1.0;
  r.protect = 0.5;
  return r;
}

DesignRules tight_rules() {
  DesignRules r;
  r.gap = 3.0;
  r.obs = 2.0;
  r.protect = 1.0;
  return r;
}

TEST(RuleSet, BaseRulesOutsideAreas) {
  RuleSet rs(base_rules());
  EXPECT_DOUBLE_EQ(rs.rules_at({0, 0}).gap, 1.0);
}

TEST(RuleSet, AreaOverridesInside) {
  RuleSet rs(base_rules());
  rs.add_area({geom::Polygon::rect({{10, 0}, {20, 10}}), tight_rules()});
  EXPECT_DOUBLE_EQ(rs.rules_at({15, 5}).gap, 3.0);
  EXPECT_DOUBLE_EQ(rs.rules_at({5, 5}).gap, 1.0);
}

TEST(RuleSet, LaterAreaShadowsEarlier) {
  RuleSet rs(base_rules());
  DesignRules mid = tight_rules();
  mid.gap = 2.0;
  rs.add_area({geom::Polygon::rect({{0, 0}, {20, 10}}), mid});
  rs.add_area({geom::Polygon::rect({{10, 0}, {20, 10}}), tight_rules()});
  EXPECT_DOUBLE_EQ(rs.rules_at({5, 5}).gap, 2.0);
  EXPECT_DOUBLE_EQ(rs.rules_at({15, 5}).gap, 3.0);
}

TEST(RuleSet, TightestOnSegmentTakesFieldwiseMax) {
  RuleSet rs(base_rules());
  DesignRules a = base_rules();
  a.gap = 2.0;
  a.protect = 0.2;
  rs.add_area({geom::Polygon::rect({{0, 0}, {10, 10}}), a});
  DesignRules b = base_rules();
  b.gap = 1.5;
  b.protect = 2.0;
  rs.add_area({geom::Polygon::rect({{10, 0}, {20, 10}}), b});
  // Segment crossing both areas.
  const DesignRules t = rs.tightest_on_segment({{5, 5}, {15, 5}});
  EXPECT_DOUBLE_EQ(t.gap, 2.0);
  EXPECT_DOUBLE_EQ(t.protect, 2.0);
}

TEST(RuleSet, TightestOnSegmentIgnoresFarAreas) {
  RuleSet rs(base_rules());
  rs.add_area({geom::Polygon::rect({{100, 100}, {110, 110}}), tight_rules()});
  const DesignRules t = rs.tightest_on_segment({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(t.gap, 1.0);
}

TEST(RuleSet, AscendingPairPitchesSortedDeduped) {
  RuleSet rs(base_rules());
  const auto r = rs.ascending_pair_pitches({0.8, 0.4, 0.8, 1.2, 0.4 + 1e-12});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 0.4);
  EXPECT_DOUBLE_EQ(r[1], 0.8);
  EXPECT_DOUBLE_EQ(r[2], 1.2);
}

TEST(RuleSet, AddAreaValidates) {
  RuleSet rs(base_rules());
  DesignRules bad;
  bad.gap = -1.0;
  EXPECT_THROW(rs.add_area({geom::Polygon::rect({{0, 0}, {1, 1}}), bad}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lmr::drc
