/// RoutingService tests: the multi-board serving tier over Sessions.
///
/// The hard contract mirrors the session oracle, lifted to N boards: after
/// replaying a service_storm stream — queued edits, coalesced batches,
/// mid-stream eviction and thaw included — every board's end state must be
/// routes_equivalent to a fresh route_board of its edited board, under both
/// DRC schedules and at 1 and 4 threads. Around it, the scheduling
/// semantics the bench counters report: edits queue instead of hitting the
/// RoutingFreeze throw, a serial service coalesces a burst into one batch,
/// eviction refuses busy/queued boards, and a failed edit surfaces at
/// drain() without wedging the board. The robustness tier rides the same
/// oracle: injected faults retried to the same end state, quarantine
/// reverting to the last-good snapshot, resurrect + replay converging, and
/// queue backpressure shedding typed rejections.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/cancel.hpp"
#include "fault/fault_plan.hpp"
#include "pipeline/session.hpp"
#include "scenario/service_storm.hpp"
#include "service/routing_service.hpp"

namespace lmr::service {
namespace {

/// The bench suite's router configuration (Suite::scenario_router_options):
/// the storms were generated and validated under exactly this flow.
pipeline::RouterOptions storm_options(const scenario::Scenario& sc,
                                      pipeline::DrcSchedule schedule) {
  pipeline::RouterOptions o;
  o.extender.l_disc = 0.5;
  o.extender.max_width_steps = 24;
  o.drc_schedule = schedule;
  if (sc.spec.extender_tolerance > 0.0) o.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) o.pair_rule_set = sc.pair_rule_set;
  return o;
}

/// Full-speed replay honouring the stream's sync/evict markers — the same
/// loop Suite::run_service and the CI gate run.
void replay(RoutingService& svc, const scenario::ServiceStorm& storm) {
  for (const scenario::ServiceStormEvent& ev : storm.stream) {
    svc.submit(storm.boards[ev.board].spec.name, ev.edit);
    if (ev.sync_after) svc.drain();
    if (ev.evict_after) {
      svc.drain();
      svc.evict_idle();
    }
  }
  svc.drain();
}

TEST(RoutingService, ServiceStormMatchesFreshRoutesUnderEverySchedule) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  ASSERT_GE(storm.boards.size(), 8u);

  for (const pipeline::DrcSchedule schedule :
       {pipeline::DrcSchedule::Barrier, pipeline::DrcSchedule::Overlapped}) {
    // Fresh oracles once per schedule: regenerate each board, replay its
    // script, route from scratch.
    std::vector<scenario::Scenario> fresh;
    std::vector<pipeline::BoardRoute> fresh_routes;
    for (const scenario::EditStorm& bs : storm.boards) {
      scenario::Scenario f = scenario::materialize(bs.spec.base);
      for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
      const pipeline::Router router(f.rules, storm_options(f, schedule));
      fresh_routes.push_back(router.route_board(f.layout));
      fresh.push_back(std::move(f));
    }

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE((schedule == pipeline::DrcSchedule::Barrier ? "barrier" : "overlap") +
                   std::string("/t") + std::to_string(threads));
      ServiceOptions sopts;
      sopts.threads = threads;
      RoutingService svc(sopts);
      for (const scenario::EditStorm& bs : storm.boards) {
        svc.add_board(bs.spec.name, bs.scenario.rules,
                      storm_options(bs.scenario, schedule), bs.scenario.layout);
      }
      svc.drain();
      replay(svc, storm);

      ServiceTotals totals = svc.totals();
      EXPECT_EQ(totals.submitted, storm.stream.size());
      EXPECT_EQ(totals.applied, storm.stream.size());
      // The stream's evict marker fired mid-replay and later edits thawed.
      EXPECT_GT(totals.evictions, 0u);
      EXPECT_GT(totals.thaws, 0u);
      EXPECT_LE(totals.thaws, totals.evictions);
      if (threads == 1) {
        // Serial replay queues whole bursts between drains: coalescing is
        // deterministic, not a scheduling accident.
        EXPECT_GT(totals.coalesced_batches, 0u);
        EXPECT_GT(totals.max_batch, 1u);
      }

      for (std::size_t b = 0; b < storm.boards.size(); ++b) {
        const std::string& id = storm.boards[b].spec.name;
        std::string why;
        EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id),
                                                svc.board_route(id), fresh[b].layout,
                                                fresh_routes[b], &why))
            << id << ": " << why;
      }
    }
  }
}

TEST(RoutingService, SerialServiceCoalescesABurstIntoOneBatch) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 3u);

  ServiceOptions sopts;
  sopts.threads = 1;  // 0-worker pool: pumps only run inside drain()
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();

  // A burst of 3 submits with no drain between: all of them queue (the
  // dispatch cannot run yet), none throws despite the routed board.
  EXPECT_EQ(svc.submit(id, bs.edits.at(0)).ordinal, 1u);
  EXPECT_EQ(svc.submit(id, bs.edits.at(1)).ordinal, 2u);
  EXPECT_EQ(svc.submit(id, bs.edits.at(2)).ordinal, 3u);
  EXPECT_EQ(svc.queue_depth(id), 3u);
  svc.drain();
  EXPECT_EQ(svc.queue_depth(id), 0u);

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_EQ(st.batches, 1u);  // one dispatch, one reroute, one sweep
  EXPECT_EQ(st.coalesced_batches, 1u);
  EXPECT_EQ(st.max_batch, 3u);
  EXPECT_EQ(st.max_queue_depth, 3u);
  EXPECT_EQ(st.reroutes, 1u);

  // The coalesced end state equals applying the same prefix to a fresh
  // session as one batch.
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  for (std::size_t k = 0; k < 3; ++k) layout::apply_edit(f.layout, bs.edits.at(k));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, MaxBatchCapsCoalescing) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 3u);

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_batch = 2;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();
  for (std::size_t k = 0; k < 3; ++k) svc.submit(id, bs.edits.at(k));
  svc.drain();

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_EQ(st.batches, 2u);  // 2 + 1, not 3 in one
  EXPECT_EQ(st.max_batch, 2u);
}

TEST(RoutingService, EvictAndThawRoundTrip) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);

  // Not routed yet (initial route still queued): eviction refuses.
  EXPECT_FALSE(svc.evict(id));
  svc.drain();

  // Queued edit: eviction refuses too — the snapshot would go stale.
  svc.submit(id, bs.edits.at(0));
  EXPECT_FALSE(svc.evict(id));
  svc.drain();

  // Idle and routed: evicts to the snapshot; state stays readable; a
  // second evict is a no-op.
  EXPECT_TRUE(svc.evict(id));
  EXPECT_TRUE(svc.is_evicted(id));
  EXPECT_FALSE(svc.evict(id));
  EXPECT_EQ(svc.board_route(id).version, svc.board_layout(id).version());

  // Thaw-on-next-edit: the submit goes through transparently.
  svc.submit(id, bs.edits.at(1));
  svc.drain();
  EXPECT_FALSE(svc.is_evicted(id));
  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.thaws, 1u);
  EXPECT_EQ(st.applied, 2u);

  // And the thawed board still matches a fresh route of the edited board.
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  layout::apply_edit(f.layout, bs.edits.at(1));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, FailedEditSurfacesAtDrainWithoutWedgingTheBoard) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();

  layout::BoardEdit bogus;
  bogus.kind = layout::BoardEditKind::SetGroupTarget;
  bogus.group = svc.board_layout(id).groups().size() + 5;
  bogus.target = 123.0;
  svc.submit(id, bogus);
  try {
    svc.drain();
    FAIL() << "drain() should have thrown ServiceError";
  } catch (const ServiceError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures().front().board, id);
  }

  // The error was consumed by that drain; the bad edit was dropped (not
  // retried — a logic_error can never succeed), the board keeps serving,
  // and the end state still matches a fresh route of the *good* edits.
  EXPECT_NO_THROW(svc.drain());
  EXPECT_FALSE(svc.is_quarantined(id));
  svc.submit(id, bs.edits.at(0));
  svc.drain();
  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.applied, 1u);
  EXPECT_EQ(st.dropped_edits, 1u);
  EXPECT_EQ(st.retries, 0u);

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, DuplicateAndUnknownBoardIdsThrow) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  svc.add_board(bs.spec.name, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  EXPECT_THROW(svc.add_board(bs.spec.name, bs.scenario.rules,
                             storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                             bs.scenario.layout),
               std::invalid_argument);
  EXPECT_THROW(svc.submit("no-such-board", bs.edits.at(0)), std::out_of_range);
  EXPECT_THROW((void)svc.stats("no-such-board"), std::out_of_range);
  svc.drain();
}

TEST(RoutingService, SharedStreamStressWithConcurrentSubmitters) {
  // Thread-safety smoke for TSAN: several boards replayed with submits
  // racing the dispatches on a multi-worker pool, then the oracle on one
  // board (the full oracle matrix lives in the schedule test above).
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);

  ServiceOptions sopts;
  sopts.threads = 4;
  RoutingService svc(sopts);
  for (const scenario::EditStorm& bs : storm.boards) {
    svc.add_board(bs.spec.name, bs.scenario.rules,
                  storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                  bs.scenario.layout);
  }
  // No initial drain: submits race the initial routes — every edit must
  // queue behind its board's route instead of throwing.
  for (const scenario::ServiceStormEvent& ev : storm.stream) {
    svc.submit(storm.boards[ev.board].spec.name, ev.edit);
  }
  svc.drain();
  const ServiceTotals totals = svc.totals();
  EXPECT_EQ(totals.applied, storm.stream.size());

  const scenario::EditStorm& bs = storm.boards.at(0);
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(bs.spec.name),
                                          svc.board_route(bs.spec.name), f.layout,
                                          full, &why))
      << why;
}

TEST(RoutingService, RetryRecoversFromInjectedFault) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  const std::string id = bs.spec.name;

  // First edit-lowering attempt on this board dies; the retry's occurrence
  // falls outside the window and succeeds.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add({fault::apply_site(id), /*nth=*/1, /*count=*/1});

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.fault_plan = plan;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();
  svc.submit(id, bs.edits.at(0));
  EXPECT_NO_THROW(svc.drain());  // transient, recovered: nothing surfaces

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.applied, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.injected_faults, 1u);
  EXPECT_EQ(st.quarantines, 0u);
  EXPECT_EQ(st.dropped_edits, 0u);
  EXPECT_GT(st.backoff_virtual_s, 0.0);
  EXPECT_FALSE(svc.is_quarantined(id));

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, QuarantineRevertsToLastGoodAndResurrectReplays) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 2u);
  const std::string id = bs.spec.name;

  // Lowering of the *second* accepted edit fails on every rung of the
  // ladder (count == max_attempts), so the board quarantines holding the
  // checkpoint from the first edit's successful dispatch.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add({fault::apply_site(id), /*nth=*/2, /*count=*/3});

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_attempts = 3;
  sopts.fault_plan = plan;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();
  svc.submit(id, bs.edits.at(0));
  svc.drain();
  svc.submit(id, bs.edits.at(1));
  EXPECT_THROW(svc.drain(), ServiceError);

  EXPECT_TRUE(svc.is_quarantined(id));
  EXPECT_TRUE(svc.is_routed(id));
  {
    const BoardStats st = svc.stats(id);
    EXPECT_EQ(st.applied, 1u);
    EXPECT_EQ(st.quarantines, 1u);
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.degraded_retries, 1u);
    EXPECT_EQ(st.injected_faults, 3u);
    EXPECT_EQ(st.dropped_edits, 1u);  // the in-flight victim
  }

  // Quarantined serving state == the last-good snapshot: exactly the board
  // after edit 0 only. Submits shed with a typed status.
  scenario::Scenario prefix = scenario::materialize(bs.spec.base);
  layout::apply_edit(prefix.layout, bs.edits.at(0));
  const pipeline::Router router(
      prefix.rules, storm_options(prefix, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute prefix_route = router.route_board(prefix.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          prefix.layout, prefix_route, &why))
      << why;
  const SubmitResult shed = svc.submit(id, bs.edits.at(1));
  EXPECT_EQ(shed.status, SubmitStatus::Quarantined);
  EXPECT_FALSE(shed.accepted());
  EXPECT_EQ(svc.stats(id).shed, 1u);

  // Resurrect and replay the lost edit: the rule's window is exhausted, so
  // the board converges to the full end state.
  EXPECT_TRUE(svc.resurrect(id));
  EXPECT_FALSE(svc.resurrect(id));  // only once
  EXPECT_FALSE(svc.is_quarantined(id));
  EXPECT_TRUE(svc.submit(id, bs.edits.at(1)).accepted());
  EXPECT_NO_THROW(svc.drain());
  EXPECT_EQ(svc.stats(id).resurrections, 1u);
  EXPECT_EQ(svc.stats(id).thaws, 1u);  // thawed from the last-good snapshot

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  layout::apply_edit(f.layout, bs.edits.at(1));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

// Regression: a resurrected board that fails straight through the ladder
// again — zero successful dispatches between the two quarantines — must
// still hold its last-good checkpoint. The thaw replenishes it; before
// that, the second quarantine moved an already-moved-from last_good and
// the next state read dereferenced an empty optional.
TEST(RoutingService, RequarantineAfterResurrectKeepsLastGoodSnapshot) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 2u);
  const std::string id = bs.spec.name;

  // Lowering of the second accepted edit fails on every rung of the ladder
  // twice over (count == 2 * max_attempts): quarantine, resurrect, replay,
  // quarantine again without a single success in between.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add({fault::apply_site(id), /*nth=*/2, /*count=*/6});

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_attempts = 3;
  sopts.fault_plan = plan;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();
  svc.submit(id, bs.edits.at(0));
  svc.drain();  // success: the last-good checkpoint is the board after edit 0

  svc.submit(id, bs.edits.at(1));
  EXPECT_THROW(svc.drain(), ServiceError);  // quarantine #1
  ASSERT_TRUE(svc.resurrect(id));
  EXPECT_TRUE(svc.submit(id, bs.edits.at(1)).accepted());
  EXPECT_THROW(svc.drain(), ServiceError);  // quarantine #2

  EXPECT_TRUE(svc.is_quarantined(id));
  {
    const BoardStats st = svc.stats(id);
    EXPECT_EQ(st.quarantines, 2u);
    EXPECT_EQ(st.thaws, 1u);
    EXPECT_EQ(st.injected_faults, 6u);
    EXPECT_EQ(st.dropped_edits, 2u);
    EXPECT_EQ(st.applied, 1u);
  }

  // The serving state is still the after-edit-0 checkpoint.
  scenario::Scenario prefix = scenario::materialize(bs.spec.base);
  layout::apply_edit(prefix.layout, bs.edits.at(0));
  const pipeline::Router router(
      prefix.rules, storm_options(prefix, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute prefix_route = router.route_board(prefix.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          prefix.layout, prefix_route, &why))
      << why;

  // The rule's window is spent: the second resurrect's replay converges.
  EXPECT_TRUE(svc.resurrect(id));
  EXPECT_TRUE(svc.submit(id, bs.edits.at(1)).accepted());
  EXPECT_NO_THROW(svc.drain());
  EXPECT_EQ(svc.stats(id).resurrections, 2u);
  EXPECT_EQ(svc.stats(id).thaws, 2u);

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  layout::apply_edit(f.layout, bs.edits.at(1));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, InitialRouteFaultQuarantinesAndResurrectRecovers) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  const std::string id = bs.spec.name;

  // Every rung of the initial route dies on the first member's extension.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add({fault::extend_site(id, 0, 0), /*nth=*/1, /*count=*/3});

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_attempts = 3;
  sopts.fault_plan = plan;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  EXPECT_THROW(svc.drain(), ServiceError);
  EXPECT_TRUE(svc.is_quarantined(id));
  EXPECT_FALSE(svc.is_routed(id));
  EXPECT_EQ(svc.submit(id, bs.edits.at(0)).status, SubmitStatus::Quarantined);

  // Resurrect reschedules the never-completed initial route (the rule's
  // window is spent), then ordinary serving resumes.
  EXPECT_TRUE(svc.resurrect(id));
  EXPECT_NO_THROW(svc.drain());
  EXPECT_TRUE(svc.is_routed(id));
  svc.submit(id, bs.edits.at(0));
  svc.drain();

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.quarantines, 1u);
  EXPECT_EQ(st.resurrections, 1u);
  EXPECT_EQ(st.injected_faults, 3u);
  EXPECT_EQ(st.applied, 1u);

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, QueueLimitShedsWithTypedStatus) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 3u);
  const std::string id = bs.spec.name;

  ServiceOptions sopts;
  sopts.threads = 1;  // 0-worker pool: nothing dispatches until drain()
  sopts.queue_limit = 2;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();

  EXPECT_TRUE(svc.submit(id, bs.edits.at(0)).accepted());
  EXPECT_TRUE(svc.submit(id, bs.edits.at(1)).accepted());
  const SubmitResult full_result = svc.submit(id, bs.edits.at(2));
  EXPECT_EQ(full_result.status, SubmitStatus::QueueFull);
  EXPECT_EQ(full_result.ordinal, 0u);
  EXPECT_EQ(svc.queue_depth(id), 2u);
  svc.drain();

  // Shed edits are not errors: drain stays clean and the retried submit
  // lands once the queue has room again.
  EXPECT_TRUE(svc.submit(id, bs.edits.at(2)).accepted());
  svc.drain();
  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_EQ(st.shed, 1u);

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  for (std::size_t k = 0; k < 3; ++k) layout::apply_edit(f.layout, bs.edits.at(k));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, DrainAggregatesEveryFailedBoard) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  ASSERT_GE(storm.boards.size(), 2u);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  for (std::size_t b = 0; b < 2; ++b) {
    const scenario::EditStorm& bs = storm.boards.at(b);
    svc.add_board(bs.spec.name, bs.scenario.rules,
                  storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                  bs.scenario.layout);
  }
  svc.drain();

  // One bogus edit per board: drain must list *both* failures, not just
  // the first one it finds.
  for (std::size_t b = 0; b < 2; ++b) {
    const std::string& id = storm.boards.at(b).spec.name;
    layout::BoardEdit bogus;
    bogus.kind = layout::BoardEditKind::SetGroupTarget;
    bogus.group = 9999;
    bogus.target = 1.0;
    svc.submit(id, bogus);
  }
  try {
    svc.drain();
    FAIL() << "drain() should have thrown ServiceError";
  } catch (const ServiceError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures().at(0).board, storm.boards.at(0).spec.name);
    EXPECT_EQ(e.failures().at(1).board, storm.boards.at(1).spec.name);
    EXPECT_NE(std::string(e.what()).find(storm.boards.at(0).spec.name),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find(storm.boards.at(1).spec.name),
              std::string::npos);
  }
  EXPECT_NO_THROW(svc.drain());
}

TEST(RoutingService, DeadlineTimeoutsWalkTheLadderIntoQuarantine) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  const std::string id = bs.spec.name;

  // An impossible per-group budget: every attempt (degraded included)
  // times out deterministically at the first stage-boundary poll.
  pipeline::RouterOptions ropts =
      storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped);
  ropts.deadline_s = 1e-12;

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_attempts = 3;
  RoutingService svc(sopts);
  svc.add_board(id, bs.scenario.rules, ropts, bs.scenario.layout);
  try {
    svc.drain();
    FAIL() << "drain() should have thrown ServiceError";
  } catch (const ServiceError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_NE(e.failures().front().message.find("deadline"), std::string::npos);
  }

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.timeouts, 3u);
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.degraded_retries, 1u);
  EXPECT_EQ(st.quarantines, 1u);
  EXPECT_TRUE(svc.is_quarantined(id));
  EXPECT_FALSE(svc.is_routed(id));
}

TEST(RoutingService, EvictionRacingFaultingPumpsStaysConsistent) {
  // evict_idle() hammered from the replay thread while pumps fail and
  // retry on workers: eviction must only ever capture in-sync quiescent
  // sessions (never a mid-rollback or stale-route state), and the end
  // state must still match the fresh oracle. Runs at 1, 2 and hardware
  // threads; the TSAN job compiles this file too.
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Every board's second lowering attempt dies once; retries recover.
    auto plan = std::make_shared<fault::FaultPlan>();
    plan->add({"session:apply:*", /*nth=*/2, /*count=*/1});

    ServiceOptions sopts;
    sopts.threads = threads;
    sopts.fault_plan = plan;
    RoutingService svc(sopts);
    for (const scenario::EditStorm& bs : storm.boards) {
      svc.add_board(bs.spec.name, bs.scenario.rules,
                    storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                    bs.scenario.layout);
    }
    for (std::size_t e = 0; e < storm.stream.size(); ++e) {
      const scenario::ServiceStormEvent& ev = storm.stream[e];
      svc.submit(storm.boards[ev.board].spec.name, ev.edit);
      if (e % 3 == 1) svc.evict_idle();  // race the pumps
    }
    EXPECT_NO_THROW(svc.drain());

    const ServiceTotals totals = svc.totals();
    EXPECT_EQ(totals.applied, storm.stream.size());
    EXPECT_EQ(totals.quarantines, 0u);
    EXPECT_EQ(totals.dropped_edits, 0u);

    for (std::size_t b = 0; b < storm.boards.size(); ++b) {
      const scenario::EditStorm& bs = storm.boards[b];
      scenario::Scenario f = scenario::materialize(bs.spec.base);
      for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
      const pipeline::Router router(
          f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
      const pipeline::BoardRoute full = router.route_board(f.layout);
      std::string why;
      EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(bs.spec.name),
                                              svc.board_route(bs.spec.name),
                                              f.layout, full, &why))
          << bs.spec.name << ": " << why;
    }
  }
}

}  // namespace
}  // namespace lmr::service
