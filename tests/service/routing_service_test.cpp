/// RoutingService tests: the multi-board serving tier over Sessions.
///
/// The hard contract mirrors the session oracle, lifted to N boards: after
/// replaying a service_storm stream — queued edits, coalesced batches,
/// mid-stream eviction and thaw included — every board's end state must be
/// routes_equivalent to a fresh route_board of its edited board, under both
/// DRC schedules and at 1 and 4 threads. Around it, the scheduling
/// semantics the bench counters report: edits queue instead of hitting the
/// RoutingFreeze throw, a serial service coalesces a burst into one batch,
/// eviction refuses busy/queued boards, and a failed edit surfaces at
/// drain() without wedging the board.

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/session.hpp"
#include "scenario/service_storm.hpp"
#include "service/routing_service.hpp"

namespace lmr::service {
namespace {

/// The bench suite's router configuration (Suite::scenario_router_options):
/// the storms were generated and validated under exactly this flow.
pipeline::RouterOptions storm_options(const scenario::Scenario& sc,
                                      pipeline::DrcSchedule schedule) {
  pipeline::RouterOptions o;
  o.extender.l_disc = 0.5;
  o.extender.max_width_steps = 24;
  o.drc_schedule = schedule;
  if (sc.spec.extender_tolerance > 0.0) o.extender.tolerance = sc.spec.extender_tolerance;
  if (sc.pair_rule_set.size() > 1) o.pair_rule_set = sc.pair_rule_set;
  return o;
}

/// Full-speed replay honouring the stream's sync/evict markers — the same
/// loop Suite::run_service and the CI gate run.
void replay(RoutingService& svc, const scenario::ServiceStorm& storm) {
  for (const scenario::ServiceStormEvent& ev : storm.stream) {
    svc.submit(storm.boards[ev.board].spec.name, ev.edit);
    if (ev.sync_after) svc.drain();
    if (ev.evict_after) {
      svc.drain();
      svc.evict_idle();
    }
  }
  svc.drain();
}

TEST(RoutingService, ServiceStormMatchesFreshRoutesUnderEverySchedule) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  ASSERT_GE(storm.boards.size(), 8u);

  for (const pipeline::DrcSchedule schedule :
       {pipeline::DrcSchedule::Barrier, pipeline::DrcSchedule::Overlapped}) {
    // Fresh oracles once per schedule: regenerate each board, replay its
    // script, route from scratch.
    std::vector<scenario::Scenario> fresh;
    std::vector<pipeline::BoardRoute> fresh_routes;
    for (const scenario::EditStorm& bs : storm.boards) {
      scenario::Scenario f = scenario::materialize(bs.spec.base);
      for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
      const pipeline::Router router(f.rules, storm_options(f, schedule));
      fresh_routes.push_back(router.route_board(f.layout));
      fresh.push_back(std::move(f));
    }

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE((schedule == pipeline::DrcSchedule::Barrier ? "barrier" : "overlap") +
                   std::string("/t") + std::to_string(threads));
      ServiceOptions sopts;
      sopts.threads = threads;
      RoutingService svc(sopts);
      for (const scenario::EditStorm& bs : storm.boards) {
        svc.add_board(bs.spec.name, bs.scenario.rules,
                      storm_options(bs.scenario, schedule), bs.scenario.layout);
      }
      svc.drain();
      replay(svc, storm);

      ServiceTotals totals = svc.totals();
      EXPECT_EQ(totals.submitted, storm.stream.size());
      EXPECT_EQ(totals.applied, storm.stream.size());
      // The stream's evict marker fired mid-replay and later edits thawed.
      EXPECT_GT(totals.evictions, 0u);
      EXPECT_GT(totals.thaws, 0u);
      EXPECT_LE(totals.thaws, totals.evictions);
      if (threads == 1) {
        // Serial replay queues whole bursts between drains: coalescing is
        // deterministic, not a scheduling accident.
        EXPECT_GT(totals.coalesced_batches, 0u);
        EXPECT_GT(totals.max_batch, 1u);
      }

      for (std::size_t b = 0; b < storm.boards.size(); ++b) {
        const std::string& id = storm.boards[b].spec.name;
        std::string why;
        EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id),
                                                svc.board_route(id), fresh[b].layout,
                                                fresh_routes[b], &why))
            << id << ": " << why;
      }
    }
  }
}

TEST(RoutingService, SerialServiceCoalescesABurstIntoOneBatch) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 3u);

  ServiceOptions sopts;
  sopts.threads = 1;  // 0-worker pool: pumps only run inside drain()
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();

  // A burst of 3 submits with no drain between: all of them queue (the
  // dispatch cannot run yet), none throws despite the routed board.
  EXPECT_EQ(svc.submit(id, bs.edits.at(0)), 1u);
  EXPECT_EQ(svc.submit(id, bs.edits.at(1)), 2u);
  EXPECT_EQ(svc.submit(id, bs.edits.at(2)), 3u);
  EXPECT_EQ(svc.queue_depth(id), 3u);
  svc.drain();
  EXPECT_EQ(svc.queue_depth(id), 0u);

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_EQ(st.batches, 1u);  // one dispatch, one reroute, one sweep
  EXPECT_EQ(st.coalesced_batches, 1u);
  EXPECT_EQ(st.max_batch, 3u);
  EXPECT_EQ(st.max_queue_depth, 3u);
  EXPECT_EQ(st.reroutes, 1u);

  // The coalesced end state equals applying the same prefix to a fresh
  // session as one batch.
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  for (std::size_t k = 0; k < 3; ++k) layout::apply_edit(f.layout, bs.edits.at(k));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, MaxBatchCapsCoalescing) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);
  ASSERT_GE(bs.edits.size(), 3u);

  ServiceOptions sopts;
  sopts.threads = 1;
  sopts.max_batch = 2;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();
  for (std::size_t k = 0; k < 3; ++k) svc.submit(id, bs.edits.at(k));
  svc.drain();

  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.applied, 3u);
  EXPECT_EQ(st.batches, 2u);  // 2 + 1, not 3 in one
  EXPECT_EQ(st.max_batch, 2u);
}

TEST(RoutingService, EvictAndThawRoundTrip) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);

  // Not routed yet (initial route still queued): eviction refuses.
  EXPECT_FALSE(svc.evict(id));
  svc.drain();

  // Queued edit: eviction refuses too — the snapshot would go stale.
  svc.submit(id, bs.edits.at(0));
  EXPECT_FALSE(svc.evict(id));
  svc.drain();

  // Idle and routed: evicts to the snapshot; state stays readable; a
  // second evict is a no-op.
  EXPECT_TRUE(svc.evict(id));
  EXPECT_TRUE(svc.is_evicted(id));
  EXPECT_FALSE(svc.evict(id));
  EXPECT_EQ(svc.board_route(id).version, svc.board_layout(id).version());

  // Thaw-on-next-edit: the submit goes through transparently.
  svc.submit(id, bs.edits.at(1));
  svc.drain();
  EXPECT_FALSE(svc.is_evicted(id));
  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.thaws, 1u);
  EXPECT_EQ(st.applied, 2u);

  // And the thawed board still matches a fresh route of the edited board.
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  layout::apply_edit(f.layout, bs.edits.at(1));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, FailedEditSurfacesAtDrainWithoutWedgingTheBoard) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  const std::string id = bs.spec.name;
  svc.add_board(id, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  svc.drain();

  layout::BoardEdit bogus;
  bogus.kind = layout::BoardEditKind::SetGroupTarget;
  bogus.group = svc.board_layout(id).groups().size() + 5;
  bogus.target = 123.0;
  svc.submit(id, bogus);
  EXPECT_THROW(svc.drain(), std::out_of_range);

  // The error was consumed by that drain; the board keeps serving and the
  // end state still matches a fresh route of the *good* edits only.
  EXPECT_NO_THROW(svc.drain());
  svc.submit(id, bs.edits.at(0));
  svc.drain();
  const BoardStats st = svc.stats(id);
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.applied, 1u);

  scenario::Scenario f = scenario::materialize(bs.spec.base);
  layout::apply_edit(f.layout, bs.edits.at(0));
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(id), svc.board_route(id),
                                          f.layout, full, &why))
      << why;
}

TEST(RoutingService, DuplicateAndUnknownBoardIdsThrow) {
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);
  const scenario::EditStorm& bs = storm.boards.at(0);

  ServiceOptions sopts;
  sopts.threads = 1;
  RoutingService svc(sopts);
  svc.add_board(bs.spec.name, bs.scenario.rules,
                storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                bs.scenario.layout);
  EXPECT_THROW(svc.add_board(bs.spec.name, bs.scenario.rules,
                             storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                             bs.scenario.layout),
               std::invalid_argument);
  EXPECT_THROW(svc.submit("no-such-board", bs.edits.at(0)), std::out_of_range);
  EXPECT_THROW((void)svc.stats("no-such-board"), std::out_of_range);
  svc.drain();
}

TEST(RoutingService, SharedStreamStressWithConcurrentSubmitters) {
  // Thread-safety smoke for TSAN: several boards replayed with submits
  // racing the dispatches on a multi-worker pool, then the oracle on one
  // board (the full oracle matrix lives in the schedule test above).
  const scenario::ServiceStormCase c = scenario::service_storm_cases(true).at(0);
  scenario::ServiceStorm storm = scenario::materialize_service_storm(c);

  ServiceOptions sopts;
  sopts.threads = 4;
  RoutingService svc(sopts);
  for (const scenario::EditStorm& bs : storm.boards) {
    svc.add_board(bs.spec.name, bs.scenario.rules,
                  storm_options(bs.scenario, pipeline::DrcSchedule::Overlapped),
                  bs.scenario.layout);
  }
  // No initial drain: submits race the initial routes — every edit must
  // queue behind its board's route instead of throwing.
  for (const scenario::ServiceStormEvent& ev : storm.stream) {
    svc.submit(storm.boards[ev.board].spec.name, ev.edit);
  }
  svc.drain();
  const ServiceTotals totals = svc.totals();
  EXPECT_EQ(totals.applied, storm.stream.size());

  const scenario::EditStorm& bs = storm.boards.at(0);
  scenario::Scenario f = scenario::materialize(bs.spec.base);
  for (const layout::BoardEdit& e : bs.edits) layout::apply_edit(f.layout, e);
  const pipeline::Router router(
      f.rules, storm_options(f, pipeline::DrcSchedule::Overlapped));
  const pipeline::BoardRoute full = router.route_board(f.layout);
  std::string why;
  EXPECT_TRUE(pipeline::routes_equivalent(svc.board_layout(bs.spec.name),
                                          svc.board_route(bs.spec.name), f.layout,
                                          full, &why))
      << why;
}

}  // namespace
}  // namespace lmr::service
