#include <gtest/gtest.h>

#include "layout/drc_checker.hpp"
#include "workload/diffpair_cases.hpp"
#include "workload/metrics.hpp"
#include "workload/table1_cases.hpp"
#include "workload/table2_cases.hpp"

namespace lmr::workload {
namespace {

TEST(Metrics, Eq19Errors) {
  const std::vector<double> lengths{90.0, 95.0, 100.0};
  const ErrorStats e = matching_errors(lengths, 100.0);
  EXPECT_NEAR(e.max_error_pct, 10.0, 1e-9);
  EXPECT_NEAR(e.avg_error_pct, 5.0, 1e-9);
}

TEST(Metrics, Eq19EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(matching_errors({}, 100.0).max_error_pct, 0.0);
  const std::vector<double> lengths{50.0};
  EXPECT_DOUBLE_EQ(matching_errors(lengths, 0.0).max_error_pct, 0.0);
}

TEST(Metrics, Eq20UpperBound) {
  EXPECT_NEAR(extension_upper_bound_pct(66.0, 132.0), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(extension_upper_bound_pct(0.0, 10.0), 0.0);
}

TEST(Table1, AllCasesGenerate) {
  for (int k = 1; k <= 5; ++k) {
    const Table1Case c = table1_case(k);
    EXPECT_EQ(c.id, k);
    EXPECT_GT(c.target, 0.0);
    EXPECT_EQ(c.layout.groups().size(), 1u);
    const auto& group = c.layout.groups()[0];
    EXPECT_EQ(static_cast<int>(group.members.size()), c.group_size);
  }
  EXPECT_THROW(table1_case(0), std::out_of_range);
  EXPECT_THROW(table1_case(6), std::out_of_range);
}

TEST(Table1, InitialErrorsInPaperBand) {
  // The generator calibrates initial max error into the paper's 26-37 %
  // band for the single-ended cases.
  for (int k = 1; k <= 4; ++k) {
    const Table1Case c = table1_case(k);
    std::vector<double> lengths;
    for (const auto& m : c.layout.groups()[0].members) {
      lengths.push_back(c.layout.trace(m.id).length());
    }
    const ErrorStats e = matching_errors(lengths, c.target);
    EXPECT_GE(e.max_error_pct, 25.0) << "case " << k;
    EXPECT_LE(e.max_error_pct, 40.0) << "case " << k;
    EXPECT_GE(e.avg_error_pct, 10.0) << "case " << k;
  }
}

TEST(Table1, InitialLayoutIsDrcClean) {
  // The generated starting point must be a legal design: the extender's
  // clean-input assumptions depend on it.
  const Table1Case c = table1_case(1);
  layout::DrcChecker checker;
  for (const auto& m : c.layout.groups()[0].members) {
    const auto& t = c.layout.trace(m.id);
    const auto v1 = checker.check_trace(t, c.rules);
    EXPECT_TRUE(v1.empty()) << v1.size() << " violations on " << t.name;
    const auto* area = c.layout.routable_area(m.id);
    ASSERT_NE(area, nullptr);
    EXPECT_TRUE(checker.check_containment(t, *area).empty()) << t.name;
    std::vector<layout::Obstacle> obs;
    for (const auto& h : area->holes) obs.push_back({h, "via"});
    const auto v2 = checker.check_obstacles(t, c.rules, obs);
    EXPECT_TRUE(v2.empty()) << (v2.empty() ? "" : v2[0].note) << " " << t.name;
  }
}

TEST(Table1, DeterministicGeneration) {
  const Table1Case a = table1_case(2);
  const Table1Case b = table1_case(2);
  const auto& ta = a.layout.traces().begin()->second;
  const auto& tb = b.layout.traces().begin()->second;
  ASSERT_EQ(ta.path.size(), tb.path.size());
  EXPECT_DOUBLE_EQ(ta.length(), tb.length());
  EXPECT_EQ(a.layout.obstacles().size(), b.layout.obstacles().size());
}

TEST(Table1, DifferentialCaseHasPairs) {
  const Table1Case c = table1_case(5);
  EXPECT_EQ(c.trace_type, "differential");
  EXPECT_EQ(c.layout.pairs().size(), 4u);
  for (const auto& [id, p] : c.layout.pairs()) {
    // Sub-traces at the pair pitch along the straight prefix.
    EXPECT_NEAR(p.positive.path[0].y - p.negative.path[0].y, p.pitch, 1e-9);
  }
}

TEST(Table2, SweepParameters) {
  for (int k = 1; k <= 6; ++k) {
    const Table2Case c = table2_case(k);
    EXPECT_NEAR(c.rules.gap, 2.5 + 0.5 * (k - 1), 1e-12);
    EXPECT_DOUBLE_EQ(c.l_original, 66.0);
    EXPECT_GT(c.area.holes.size(), 10u);
  }
  EXPECT_THROW(table2_case(0), std::out_of_range);
  EXPECT_THROW(table2_case(7), std::out_of_range);
}

TEST(Table2, GeometryIdenticalAcrossCases) {
  // Only the DRC changes; the dummy design is fixed.
  const Table2Case a = table2_case(1);
  const Table2Case b = table2_case(6);
  ASSERT_EQ(a.area.holes.size(), b.area.holes.size());
  for (std::size_t i = 0; i < a.area.holes.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(a.area.holes[i].centroid(), b.area.holes[i].centroid()));
  }
}

TEST(Table2, InitialTraceClean) {
  const Table2Case c = table2_case(6);  // tightest rules
  layout::DrcChecker checker;
  std::vector<layout::Obstacle> obs;
  for (const auto& h : c.area.holes) obs.push_back({h, "via"});
  const auto v = checker.check_obstacles(c.trace, c.rules, obs);
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v[0].note);
}

TEST(DiffPairCases, DecoupledShapes) {
  const DiffPairCase c = decoupled_pair_case();
  EXPECT_EQ(c.rule_set.size(), 2u);
  EXPECT_LT(c.rule_set[0], c.rule_set[1]);
  EXPECT_GT(c.tiny_pattern_nodes, 0);
  EXPECT_GT(c.pair.negative.path.size(), c.pair.positive.path.size());
}

TEST(DiffPairCases, CoupledControl) {
  const DiffPairCase c = coupled_pair_case();
  EXPECT_EQ(c.rule_set.size(), 1u);
  EXPECT_NEAR(c.pair.positive.path[0].y - c.pair.negative.path[0].y, c.pair.pitch, 1e-9);
}

}  // namespace
}  // namespace lmr::workload
