#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "index/seg_grid.hpp"

/// The SegGrid contract the Grid clearance backend and the scenario
/// generator's placement scan depend on: a window query visits a
/// conservative *superset* of the entries intersecting the window (never a
/// miss), each entry at most once per query, with removals forgotten and
/// `visit_above` filtering exactly by payload floor. The superset check runs
/// against an exact brute-force segment/box intersection over randomized
/// mixed workloads — short legs, long diagonals (cell-walk registration),
/// degenerate points, axis-aligned runs.

namespace lmr::index {
namespace {

using geom::Box;
using geom::Point;
using geom::Segment;

/// Exact closed-segment vs closed-box intersection (Liang-Barsky clip).
bool seg_intersects_box(const Segment& s, const Box& box) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = s.b.x - s.a.x, dy = s.b.y - s.a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {s.a.x - box.lo.x, box.hi.x - s.a.x, s.a.y - box.lo.y,
                       box.hi.y - s.a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return false;
    } else {
      const double r = q[i] / p[i];
      if (p[i] < 0.0) {
        t0 = std::max(t0, r);
      } else {
        t1 = std::min(t1, r);
      }
    }
  }
  return t0 <= t1;
}

/// A mixed bag of segments: short legs, degenerate points, long diagonals
/// and long axis-aligned runs (both registration strategies exercised).
std::vector<Segment> mixed_segments(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::uniform_real_distribution<double> leg(-3.0, 3.0);
  std::vector<Segment> segs;
  segs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point a{u(rng), u(rng)};
    switch (i % 4) {
      case 0:  // short leg, the common meander-scale case
        segs.push_back({a, {a.x + leg(rng), a.y + leg(rng)}});
        break;
      case 1:  // degenerate point (via centroids in the generator)
        segs.push_back({a, a});
        break;
      case 2:  // long diagonal: forces the sampled cell walk
        segs.push_back({a, {a.x + u(rng), a.y + u(rng)}});
        break;
      default:  // long axis-aligned run (straight corridor trace)
        segs.push_back({a, {a.x + u(rng), a.y}});
        break;
    }
  }
  return segs;
}

TEST(SegGrid, WindowQueryIsSupersetOfExactIntersections) {
  std::mt19937_64 rng(42);
  const std::vector<Segment> segs = mixed_segments(rng, 200);
  SegGrid grid(2.5);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    grid.insert(segs[i], i);
  }
  ASSERT_EQ(grid.size(), segs.size());

  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::uniform_real_distribution<double> w(0.1, 15.0);
  for (int q = 0; q < 300; ++q) {
    const Point lo{u(rng), u(rng)};
    const Box box{lo, {lo.x + w(rng), lo.y + w(rng)}};
    std::vector<bool> seen(segs.size(), false);
    grid.visit(box, [&](const SegGrid::Entry& e) {
      EXPECT_FALSE(seen[e.payload]) << "entry reported twice in one query";
      seen[e.payload] = true;
      return true;
    });
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (seg_intersects_box(segs[i], box)) {
        EXPECT_TRUE(seen[i]) << "query " << q << " missed intersecting segment " << i;
      }
    }
  }
}

TEST(SegGrid, LongDiagonalNeverMissedAlongItsRun) {
  // A diagonal hundreds of cells long: every small window centered on a
  // point of the segment must report it (the sampled walk's 3x3
  // neighborhoods must cover the true geometry).
  SegGrid grid(1.0);
  const Segment diag{{0.0, 0.0}, {400.0, 173.0}};
  grid.insert(diag, 7);
  for (int k = 0; k <= 1000; ++k) {
    const double t = static_cast<double>(k) / 1000.0;
    const Point p = diag.at(t);
    bool found = false;
    grid.visit(Box{p, p}.inflated(0.25), [&](const SegGrid::Entry& e) {
      found = e.payload == 7;
      return !found;
    });
    EXPECT_TRUE(found) << "missed at t=" << t;
  }
}

TEST(SegGrid, RemoveForgetsAndIdsRecycle) {
  SegGrid grid(2.0);
  const std::uint32_t a = grid.insert({{0, 0}, {5, 0}}, 1);
  const std::uint32_t b = grid.insert({{0, 3}, {5, 3}}, 2);
  EXPECT_EQ(grid.size(), 2u);
  grid.remove(a);
  EXPECT_EQ(grid.size(), 1u);

  std::size_t hits = 0;
  grid.visit(Box{{-1, -1}, {6, 4}}, [&](const SegGrid::Entry& e) {
    EXPECT_EQ(e.payload, 2u);
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1u);

  // The freed id is recycled and the new geometry is immediately queryable.
  const std::uint32_t c = grid.insert({{10, 10}, {12, 10}}, 3);
  EXPECT_EQ(c, a);
  bool found = false;
  grid.visit(Box{{9, 9}, {13, 11}}, [&](const SegGrid::Entry& e) {
    found = e.payload == 3;
    return true;
  });
  EXPECT_TRUE(found);
  (void)b;
}

TEST(SegGrid, VisitAboveFiltersByPayloadFloor) {
  // The sweep's pair-dedup depends on visit_above((t+1) << 32) skipping
  // every lower-slot entry, including after removals leave a cell's cached
  // max payload stale-high (prune-only metadata).
  SegGrid grid(2.0);
  std::vector<std::uint32_t> ids;
  for (std::uint64_t p = 0; p < 8; ++p) {
    ids.push_back(grid.insert({{0.0, 0.5 * static_cast<double>(p)}, {4.0, 0.5 * static_cast<double>(p)}}, p));
  }
  const Box all{{-1, -1}, {5, 5}};

  std::vector<std::uint64_t> seen;
  grid.visit_above(all, 5, [&](const SegGrid::Entry& e) {
    seen.push_back(e.payload);
    return true;
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{5, 6, 7}));

  // Remove the max-payload entry: the stale cell max must not resurrect it.
  grid.remove(ids[7]);
  seen.clear();
  grid.visit_above(all, 5, [&](const SegGrid::Entry& e) {
    seen.push_back(e.payload);
    return true;
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{5, 6}));
}

TEST(SegGrid, EarlyStopAndReset) {
  SegGrid grid(1.0);
  for (int i = 0; i < 10; ++i) {
    grid.insert({{static_cast<double>(i), 0.0}, {static_cast<double>(i) + 0.5, 0.0}},
                static_cast<std::uint64_t>(i));
  }
  std::size_t visits = 0;
  grid.visit(Box{{-1, -1}, {11, 1}}, [&](const SegGrid::Entry&) {
    ++visits;
    return false;  // stop after the first
  });
  EXPECT_EQ(visits, 1u);

  grid.reset(3.0);
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.cell(), 3.0);
  visits = 0;
  grid.visit(Box{{-10, -10}, {20, 20}}, [&](const SegGrid::Entry&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0u);
}

TEST(SegGrid, ChurnKeepsSupersetGuarantee) {
  // Interleaved insert/remove churn with brute-force mirrors: the grid must
  // stay exact-superset through id recycling and extent growth.
  std::mt19937_64 rng(7);
  SegGrid grid(2.0);
  struct LiveSeg {
    std::uint32_t id;
    Segment seg;
    std::uint64_t payload;
  };
  std::vector<LiveSeg> live;
  std::uniform_real_distribution<double> u(0.0, 60.0);
  std::uint64_t next_payload = 0;
  for (int step = 0; step < 500; ++step) {
    const bool remove = !live.empty() && (rng() % 3 == 0);
    if (remove) {
      const std::size_t k = rng() % live.size();
      grid.remove(live[k].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const Point a{u(rng), u(rng)};
      const Segment s{a, {a.x + u(rng) * 0.2, a.y + u(rng) * 0.2}};
      live.push_back({grid.insert(s, next_payload), s, next_payload});
      ++next_payload;
    }
    ASSERT_EQ(grid.size(), live.size());
    if (step % 25 != 0) continue;
    const Point lo{u(rng), u(rng)};
    const Box box{lo, {lo.x + 10.0, lo.y + 10.0}};
    std::vector<std::uint64_t> reported;
    grid.visit(box, [&](const SegGrid::Entry& e) {
      reported.push_back(e.payload);
      return true;
    });
    std::sort(reported.begin(), reported.end());
    for (const LiveSeg& ls : live) {
      if (!seg_intersects_box(ls.seg, box)) continue;
      EXPECT_TRUE(std::binary_search(reported.begin(), reported.end(), ls.payload))
          << "step " << step << " missed live segment payload " << ls.payload;
    }
    // Nothing dead may be reported.
    for (const std::uint64_t p : reported) {
      EXPECT_TRUE(std::any_of(live.begin(), live.end(),
                              [&](const LiveSeg& ls) { return ls.payload == p; }))
          << "step " << step << " reported removed payload " << p;
    }
  }
}

}  // namespace
}  // namespace lmr::index
