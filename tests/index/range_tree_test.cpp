#include "index/range_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace lmr::index {
namespace {

using geom::Box;
using geom::Point;

TEST(RangeTree, EmptyTree) {
  RangeTree2D t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query({{0, 0}, {10, 10}}).empty());
}

TEST(RangeTree, SinglePoint) {
  RangeTree2D t{{{{5, 5}, 7}}};
  auto hit = t.query({{0, 0}, {10, 10}});
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].payload, 7u);
  EXPECT_TRUE(t.query({{6, 0}, {10, 10}}).empty());
  EXPECT_TRUE(t.query({{0, 6}, {10, 10}}).empty());
}

TEST(RangeTree, InclusiveBoundaries) {
  RangeTree2D t{{{{1, 1}, 0}, {{5, 5}, 1}}};
  EXPECT_EQ(t.query({{1, 1}, {5, 5}}).size(), 2u);
  EXPECT_EQ(t.query({{1, 1}, {4.999, 5}}).size(), 1u);
}

TEST(RangeTree, GridQuery) {
  std::vector<RangeTree2D::Entry> entries;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      entries.push_back({{double(x), double(y)}, static_cast<std::uint32_t>(x * 10 + y)});
    }
  }
  RangeTree2D t{entries};
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.query({{2, 3}, {5, 7}}).size(), 4u * 5u);
  EXPECT_EQ(t.query({{0, 0}, {9, 9}}).size(), 100u);
  EXPECT_EQ(t.query({{-5, -5}, {-1, -1}}).size(), 0u);
}

TEST(RangeTree, MatchesBruteForceOnRandomData) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::vector<RangeTree2D::Entry> entries;
  for (std::uint32_t i = 0; i < 500; ++i) entries.push_back({{u(rng), u(rng)}, i});
  RangeTree2D t{entries};
  for (int trial = 0; trial < 40; ++trial) {
    const double x0 = u(rng), x1 = u(rng), y0 = u(rng), y1 = u(rng);
    const Box box{{std::min(x0, x1), std::min(y0, y1)}, {std::max(x0, x1), std::max(y0, y1)}};
    std::size_t expected = 0;
    for (const auto& e : entries) {
      if (box.contains(e.p)) ++expected;
    }
    EXPECT_EQ(t.query(box).size(), expected) << "trial " << trial;
  }
}

TEST(RangeTree, VisitEarlyStop) {
  std::vector<RangeTree2D::Entry> entries;
  for (std::uint32_t i = 0; i < 100; ++i) entries.push_back({{double(i), 0.0}, i});
  RangeTree2D t{entries};
  int visited = 0;
  t.visit({{0, -1}, {99, 1}}, [&](const RangeTree2D::Entry&) {
    ++visited;
    return visited < 5;  // stop after 5
  });
  EXPECT_EQ(visited, 5);
}

TEST(RangeTree, DuplicateCoordinatesAllReported) {
  std::vector<RangeTree2D::Entry> entries(8, {{3.0, 3.0}, 0});
  for (std::uint32_t i = 0; i < entries.size(); ++i) entries[i].payload = i;
  RangeTree2D t{entries};
  auto hits = t.query({{3, 3}, {3, 3}});
  EXPECT_EQ(hits.size(), 8u);
}

TEST(RangeTree, PayloadsPreserved) {
  RangeTree2D t{{{{1, 2}, 11}, {{3, 4}, 22}, {{5, 6}, 33}}};
  auto hits = t.query({{2, 3}, {4, 5}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].payload, 22u);
}

}  // namespace
}  // namespace lmr::index
