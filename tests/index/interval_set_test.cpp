#include "index/interval_set.hpp"

#include <gtest/gtest.h>

namespace lmr::index {
namespace {

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet s;
  s.insert(0, 1);
  s.insert(5, 6);
  s.insert(2, 3);
  ASSERT_EQ(s.intervals().size(), 3u);
  EXPECT_DOUBLE_EQ(s.total_length(), 3.0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].lo, 2.0);
}

TEST(IntervalSet, MergeOverlapping) {
  IntervalSet s;
  s.insert(0, 2);
  s.insert(1, 3);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_length(), 3.0);
}

TEST(IntervalSet, MergeTouching) {
  IntervalSet s;
  s.insert(0, 2);
  s.insert(2, 4);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].hi, 4.0);
}

TEST(IntervalSet, MergeSpanningSeveral) {
  IntervalSet s;
  s.insert(0, 1);
  s.insert(2, 3);
  s.insert(4, 5);
  s.insert(0.5, 4.5);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.total_length(), 5.0);
}

TEST(IntervalSet, ReversedBoundsNormalized) {
  IntervalSet s;
  s.insert(3, 1);
  ASSERT_EQ(s.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 1.0);
}

TEST(IntervalSet, Intersects) {
  IntervalSet s;
  s.insert(2, 4);
  EXPECT_TRUE(s.intersects(3, 5));
  EXPECT_TRUE(s.intersects(4, 5));       // touching
  EXPECT_FALSE(s.intersects(4.1, 5));
  EXPECT_TRUE(s.intersects(4.05, 5, 0.1));  // with tolerance
  EXPECT_FALSE(s.intersects(-1, 1.9));
}

TEST(IntervalSet, Gaps) {
  IntervalSet s;
  s.insert(2, 3);
  s.insert(5, 6);
  const auto g = s.gaps(0, 10);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(g[0].hi, 2.0);
  EXPECT_DOUBLE_EQ(g[1].lo, 3.0);
  EXPECT_DOUBLE_EQ(g[1].hi, 5.0);
  EXPECT_DOUBLE_EQ(g[2].lo, 6.0);
  EXPECT_DOUBLE_EQ(g[2].hi, 10.0);
}

TEST(IntervalSet, GapsWhenEmpty) {
  IntervalSet s;
  const auto g = s.gaps(1, 4);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0].length(), 3.0);
}

TEST(IntervalSet, GapsFullyCovered) {
  IntervalSet s;
  s.insert(0, 10);
  EXPECT_TRUE(s.gaps(2, 8).empty());
}

}  // namespace
}  // namespace lmr::index
