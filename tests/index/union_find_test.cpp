#include "index/union_find.hpp"

#include <gtest/gtest.h>

namespace lmr::index {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_FALSE(uf.connected(i, j));
  }
  EXPECT_EQ(uf.component_size(3), 1u);
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.component_size(0), 3u);
  EXPECT_EQ(uf.component_size(5), 1u);
}

TEST(UnionFind, ChainCollapse) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  for (std::size_t i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_TRUE(uf.connected(0, n - 1));
  EXPECT_EQ(uf.component_size(500), n);
}

TEST(UnionFind, TwoComponents) {
  UnionFind uf(8);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(0, 3);
  uf.unite(4, 5);
  uf.unite(6, 7);
  uf.unite(4, 7);
  EXPECT_TRUE(uf.connected(1, 2));
  EXPECT_TRUE(uf.connected(5, 6));
  EXPECT_FALSE(uf.connected(0, 4));
  EXPECT_EQ(uf.component_size(0), 4u);
  EXPECT_EQ(uf.component_size(4), 4u);
}

}  // namespace
}  // namespace lmr::index
