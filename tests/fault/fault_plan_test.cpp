/// FaultPlan / CancelToken unit tests: the deterministic fault plane the
/// serving-tier storms are built on. Occurrence windows, prefix matching,
/// delay fall-through, counter observability under concurrent visits, and
/// the cancellation token's cancel/deadline/parent-chain semantics.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/cancel.hpp"
#include "fault/fault_plan.hpp"

namespace lmr::fault {
namespace {

TEST(FaultPlan, FiresExactlyOnTheOccurrenceWindow) {
  FaultPlan plan;
  plan.add({"extend:b0/g0/m0", /*nth=*/2, /*count=*/2});

  EXPECT_NO_THROW(plan.at_site("extend:b0/g0/m0"));  // occurrence 1
  EXPECT_THROW(plan.at_site("extend:b0/g0/m0"), InjectedFault);   // 2
  EXPECT_THROW(plan.at_site("extend:b0/g0/m0"), InjectedFault);   // 3
  EXPECT_NO_THROW(plan.at_site("extend:b0/g0/m0"));  // 4: window spent
  EXPECT_EQ(plan.hits(0), 4u);
  EXPECT_EQ(plan.fires(0), 2u);
  EXPECT_EQ(plan.total_fires(), 2u);
}

TEST(FaultPlan, NonMatchingSitesDoNotCount) {
  FaultPlan plan;
  plan.add({"sweep:b0/g1", /*nth=*/1, /*count=*/1});
  EXPECT_NO_THROW(plan.at_site("sweep:b0/g0"));
  EXPECT_NO_THROW(plan.at_site("extend:b0/g1/m0"));
  EXPECT_EQ(plan.hits(0), 0u);
  EXPECT_THROW(plan.at_site("sweep:b0/g1"), InjectedFault);
}

TEST(FaultPlan, PrefixWildcardMatchesEverySiteUnderIt) {
  FaultPlan plan;
  plan.add({"session:apply:*", /*nth=*/1, /*count=*/2});
  EXPECT_THROW(plan.at_site("session:apply:boardA"), InjectedFault);
  EXPECT_THROW(plan.at_site("session:apply:boardB"), InjectedFault);
  EXPECT_NO_THROW(plan.at_site("session:apply:boardA"));
  EXPECT_EQ(plan.hits(0), 3u);
  EXPECT_EQ(plan.fires(0), 2u);
}

TEST(FaultPlan, InjectedFaultCarriesSiteAndOccurrence) {
  FaultPlan plan;
  plan.add({"extend:b7/g2/m1", /*nth=*/3, /*count=*/1});
  plan.at_site("extend:b7/g2/m1");
  plan.at_site("extend:b7/g2/m1");
  try {
    plan.at_site("extend:b7/g2/m1");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "extend:b7/g2/m1");
    EXPECT_EQ(e.occurrence(), 3u);
    EXPECT_NE(std::string(e.what()).find("extend:b7/g2/m1"), std::string::npos);
  }
}

TEST(FaultPlan, DelayRuleStallsAndFallsThrough) {
  FaultPlan plan;
  plan.add({"sweep:b0/g0", /*nth=*/1, /*count=*/1, FaultAction::Delay,
            /*delay_s=*/0.002});
  // A delay fires (counted) but does not abort the stage.
  EXPECT_NO_THROW(plan.at_site("sweep:b0/g0"));
  EXPECT_EQ(plan.fires(0), 1u);
}

TEST(FaultPlan, SiteKeyBuildersComposeTheDocumentedShapes) {
  EXPECT_EQ(extend_site("board-3", 2, 5), "extend:board-3/g2/m5");
  EXPECT_EQ(sweep_site("board-3", 7), "sweep:board-3/g7");
  EXPECT_EQ(apply_site("board-3"), "session:apply:board-3");
}

TEST(FaultPlan, ConcurrentVisitsNeverLoseCounts) {
  // Many threads hammering two sites; the windows land on exact totals
  // because the counters are atomic (which threads *observe* the fires is
  // scheduling, but the counts are not).
  FaultPlan plan;
  plan.add({"extend:race/g0/m0", /*nth=*/50, /*count=*/10});
  constexpr int kThreads = 8;
  constexpr int kVisitsPerThread = 100;
  std::atomic<int> faults{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plan, &faults] {
      for (int i = 0; i < kVisitsPerThread; ++i) {
        try {
          plan.at_site("extend:race/g0/m0");
        } catch (const InjectedFault&) {
          faults.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(plan.hits(0), static_cast<std::uint64_t>(kThreads * kVisitsPerThread));
  EXPECT_EQ(plan.fires(0), 10u);
  EXPECT_EQ(faults.load(), 10);
}

TEST(CancelToken, EmptyTokenIsFreeAndNeverFires) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelFiresRouteCancelled) {
  const CancelToken token = CancelToken::source();
  EXPECT_TRUE(token.armed());
  EXPECT_NO_THROW(token.check());
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.check(), RouteCancelled);
}

TEST(CancelToken, ZeroDeadlineExpiresImmediatelyWithBudgetInMessage) {
  const CancelToken token = CancelToken{}.with_deadline(0.0);
  EXPECT_TRUE(token.armed());
  try {
    token.check();
    FAIL() << "expected RouteTimeout";
  } catch (const RouteTimeout& e) {
    EXPECT_EQ(e.budget_s(), 0.0);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(CancelToken, DeadlineChildStillHonoursParentCancel) {
  const CancelToken parent = CancelToken::source();
  const CancelToken child = parent.with_deadline(3600.0);  // far future
  EXPECT_NO_THROW(child.check());
  parent.cancel();
  EXPECT_TRUE(child.expired());
  EXPECT_THROW(child.check(), RouteCancelled);
}

}  // namespace
}  // namespace lmr::fault
