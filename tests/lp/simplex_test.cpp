#include "lp/simplex.hpp"

#include <gtest/gtest.h>

namespace lmr::lp {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj=12.
  SimplexSolver s(2);
  s.set_objective({3, 2});
  s.add_less_eq({1, 1}, 4);
  s.add_less_eq({1, 3}, 6);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-7);
  EXPECT_NEAR(r.x[0], 4.0, 1e-7);
  EXPECT_NEAR(r.x[1], 0.0, 1e-7);
}

TEST(Simplex, ClassicTwoVarProblem) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
  SimplexSolver s(2);
  s.set_objective({5, 4});
  s.add_less_eq({6, 4}, 24);
  s.add_less_eq({1, 2}, 6);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 21.0, 1e-7);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.5, 1e-7);
}

TEST(Simplex, GreaterEqRequiresPhase1) {
  // max -x s.t. x >= 3 -> x=3.
  SimplexSolver s(1);
  s.set_objective({-1});
  s.add_greater_eq({1}, 3);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> obj 5.
  SimplexSolver s(2);
  s.set_objective({1, 1});
  s.add_equal({1, 1}, 5);
  s.add_less_eq({1, 0}, 3);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  SimplexSolver s(1);
  s.add_less_eq({1}, 1);
  s.add_greater_eq({1}, 2);
  EXPECT_EQ(s.solve().status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  SimplexSolver s(1);
  s.set_objective({1});
  s.add_greater_eq({1}, 0);
  EXPECT_EQ(s.solve().status, LpStatus::Unbounded);
}

TEST(Simplex, PureFeasibilityNoObjective) {
  // The region-assignment pattern: find any feasible point.
  SimplexSolver s(2);
  s.add_less_eq({1, 0}, 10);
  s.add_less_eq({0, 1}, 10);
  s.add_greater_eq({1, 1}, 5);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_GE(r.x[0] + r.x[1], 5.0 - 1e-7);
  EXPECT_LE(r.x[0], 10.0 + 1e-7);
  EXPECT_LE(r.x[1], 10.0 + 1e-7);
}

TEST(Simplex, NegativeRhsNormalized) {
  // x - y <= -2 (i.e. y >= x + 2), x >= 0 -> feasible with y >= 2.
  SimplexSolver s(2);
  s.set_objective({0, -1});  // minimize y
  s.add_less_eq({1, -1}, -2);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[1], 2.0, 1e-7);
}

TEST(Simplex, AssignmentShapedFeasibility) {
  // 2 regions x 2 traces: x00 + x01 <= 4, x10 + x11 <= 4,
  // x00 + x10 >= 3, x01 + x11 >= 3 (neighbor validity: all allowed).
  SimplexSolver s(4);
  s.add_less_eq({1, 1, 0, 0}, 4);
  s.add_less_eq({0, 0, 1, 1}, 4);
  s.add_greater_eq({1, 0, 1, 0}, 3);
  s.add_greater_eq({0, 1, 0, 1}, 3);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_GE(r.x[0] + r.x[2], 3.0 - 1e-7);
  EXPECT_GE(r.x[1] + r.x[3], 3.0 - 1e-7);
}

TEST(Simplex, AssignmentShapedInfeasibility) {
  // Demands exceed total capacity.
  SimplexSolver s(4);
  s.add_less_eq({1, 1, 0, 0}, 2);
  s.add_less_eq({0, 0, 1, 1}, 2);
  s.add_greater_eq({1, 0, 1, 0}, 3);
  s.add_greater_eq({0, 1, 0, 1}, 3);
  EXPECT_EQ(s.solve().status, LpStatus::Infeasible);
}

TEST(Simplex, DegenerateTiesTerminate) {
  // Degenerate vertices exercise Bland's rule.
  SimplexSolver s(2);
  s.set_objective({1, 1});
  s.add_less_eq({1, 0}, 0);
  s.add_less_eq({0, 1}, 5);
  s.add_less_eq({1, 1}, 5);
  const LpResult r = s.solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

}  // namespace
}  // namespace lmr::lp
