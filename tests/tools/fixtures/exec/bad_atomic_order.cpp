// Lint fixture for the `atomic-order` rule. Lives under an exec/ path
// segment because the rule only applies to the lock-free executor sources.
// Never compiled.
#include <atomic>

std::atomic<int> pending{0};

int naked_ops() {
  pending.store(1);        // missing memory_order
  int v = pending.load();  // missing memory_order
  pending++;               // operator sugar hides the order entirely
  pending += 2;
  return v;
}
