// Lint fixture: explicit orderings everywhere — the `atomic-order` rule must
// stay quiet. Never compiled.
#include <atomic>

std::atomic<int> pending{0};

int disciplined_ops() {
  pending.store(1, std::memory_order_release);
  int v = pending.load(std::memory_order_acquire);
  pending.fetch_add(1, std::memory_order_acq_rel);
  int expected = 2;
  pending.compare_exchange_strong(expected, 3, std::memory_order_seq_cst,
                                  std::memory_order_relaxed);
  return v;
}
