// Lint fixture: unannotated reinterpret_cast / const_cast — the `cast` rule
// must flag both. Never compiled.
#include <cstdint>

std::uint64_t bits_of(double d) {
  return *reinterpret_cast<std::uint64_t*>(&d);
}

int* strip_const(const int* p) {
  return const_cast<int*>(p);
}
