// Lint fixture for the `layout-state` rule: a const_cast on a Layout, and a
// file named layout.cpp would additionally gate member writes — the cast
// half fires from any path. Never compiled.
namespace lmr::layout {
class Layout;
}

void sneak(const lmr::layout::Layout& frozen) {
  auto& mutable_board = const_cast<lmr::layout::Layout&>(frozen);
  (void)mutable_board;
}
