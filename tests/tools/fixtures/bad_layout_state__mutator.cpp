// Lint fixture: an out-of-class Layout member definition that writes a
// journaled container without going through record()/check_mutable() — the
// `layout-state` rule must flag it. Never compiled.
namespace lmr::layout {

struct Trace {};
class Layout {
 public:
  void rogue_add(int id, Trace t);

 private:
  int traces_[8];
};

void Layout::rogue_add(int id, Trace t) {
  traces_[id] = 0;  // journaled state, no record() in sight
  (void)t;
}

}  // namespace lmr::layout
