// Lint fixture: a well-behaved file — no rule may fire. It reads time via
// the shim, annotates its one cast, and uses grammatical fault sites.
// Never compiled.
#include <string>

namespace lmr::core {
struct Clock {};
Clock now();
}  // namespace lmr::core

void well_behaved() {
  const auto t0 = lmr::core::now();
  (void)t0;
  const std::string site = "extend:b0/g0/m0";
  const std::string swept = "sweep:b0/g2";
  const std::string applied = "session:apply:b0";
  const std::string glob = "extend:b0/*";
  (void)site;
  (void)swept;
  (void)applied;
  (void)glob;
  int x = 5;
  // The pointee is a mutable lvalue by construction here; the cast only
  // restores what the const reference dropped. lmr-lint: allow(cast)
  int* px = const_cast<int*>(static_cast<const int*>(&x));
  (void)px;
}
