// Lint fixture: malformed fault-plan site keys — the `fault-sites` rule must
// flag every literal here. Never compiled.
#include <string>

void seed_bad_sites() {
  // Wrong shape: extend sites need /g<N>/m<N>.
  const std::string a = "extend:board0/group0/member0";
  // Typo'd group marker.
  const std::string b = "sweep:board0/q1";
  // session sites are session:apply:<scope>, nothing else.
  const std::string c = "session:board0";
  // Bare builder prefix outside the registry.
  const std::string d = "extend:";
  (void)a;
  (void)b;
  (void)c;
  (void)d;
}
