// Lint fixture: every timing read here bypasses src/core/clock.hpp and must
// be flagged by the `clock` rule. Never compiled.
#include <chrono>
#include <cstdlib>

double naughty_timer() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();
  (void)wall;
  std::srand(42);
  const int jitter = std::rand();
  (void)jitter;
  return std::chrono::duration<double>(std::chrono::high_resolution_clock::now() - t0)
      .count();
}
