#!/usr/bin/env python3
"""Project-specific static lint for the LMR tree.

Rules (each one guards an invariant the compiler cannot see):

  clock          No wall-clock or monotonic-clock reads outside the timing
                 shim (src/core/clock.hpp), and no nondeterministic RNG
                 anywhere: std::chrono::{steady,system,high_resolution}_clock,
                 time()/gettimeofday/clock_gettime, rand/srand/random_device.
                 Seeded mt19937 engines are fine — the ban is on entropy and
                 wall time, not on deterministic pseudo-randomness. This is
                 what keeps "same seeds => same tracked bytes" machine-checked.

  atomic-order   Every atomic operation in src/exec/ must spell its
                 std::memory_order explicitly; the lock-free deque and pool
                 are correctness-reviewed against the published orderings,
                 and a bare .load()/.store() (seq_cst by default) hides the
                 reviewer-relevant intent. ++/--/+=/-= on atomics are banned
                 outright for the same reason.

  layout-state   Layout's journaled state may only change inside recorded
                 mutators: every Layout member function that writes a
                 journaled container must call record() or check_mutable(),
                 and nobody may const_cast a Layout to sidestep that.

  cast           reinterpret_cast / const_cast anywhere in the tree must
                 carry an explicit invariant comment with a suppression
                 marker — casts are where the type system stops helping.

  fault-sites    Fault-plan site-key string literals must parse under the
                 site grammar produced by the builders in
                 src/fault/fault_plan.cpp (extend:<scope>/g<N>/m<N>,
                 sweep:<scope>/g<N>, session:apply:<scope>, '*' globs), so a
                 typo'd site key fails CI instead of silently never firing.

  volatile-keys  The two strip-volatile twins (tools/strip_volatile.py and
                 src/bench_harness/report.cpp) must agree on the exact set
                 of volatile section keys, or result comparison drifts.

Suppression: a comment containing `lmr-lint: allow(<rule>)` on the same
line (or the line immediately above) silences that rule for that line.

Usage:
    lmr_lint.py [--root DIR] [PATH...]   # default scan: src tests bench
    lmr_lint.py --self-test              # run the fixture suite
Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}

ALLOW_RE = re.compile(r"lmr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A C++ source with comment/string-stripped shadow text.

    `code[i]` matches `raw[i]` byte for byte except that comment and string
    *contents* are blanked (newlines kept), so token scans never fire on
    prose or literals while line numbers stay aligned. String literals are
    preserved separately for the rules that inspect them.
    """

    def __init__(self, path: Path, text: str):
        self.path = path
        self.raw = text
        self.lines = text.splitlines()
        self.allow = self._collect_allows()
        self.code = self._strip(text)
        self.code_lines = self.code.splitlines()

    def _collect_allows(self):
        allow = {}
        for i, line in enumerate(self.lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                allow.setdefault(i, set()).update(rules)
        return allow

    def allowed(self, lineno: int, rule: str) -> bool:
        return rule in self.allow.get(lineno, ()) or rule in self.allow.get(
            lineno - 1, ()
        )

    @staticmethod
    def _strip(text: str) -> str:
        out = []
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                while i < n and text[i] != "\n":
                    out.append(" ")
                    i += 1
            elif c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
                if i < n:
                    out.append("  ")
                    i += 2
            elif c in "\"'":
                quote = c
                out.append(c)
                i += 1
                while i < n and text[i] != quote:
                    if text[i] == "\\" and i + 1 < n:
                        out.append("  ")
                        i += 2
                    else:
                        out.append("\n" if text[i] == "\n" else " ")
                        i += 1
                if i < n:
                    out.append(quote)
                    i += 1
            else:
                out.append(c)
                i += 1
        return "".join(out)

    def string_literals(self):
        """Yield (lineno, literal_contents) for every double-quoted literal."""
        lineno = 1
        i, n = 0, len(self.raw)
        while i < n:
            c = self.raw[i]
            if c == "\n":
                lineno += 1
                i += 1
            elif c == "/" and i + 1 < n and self.raw[i + 1] == "/":
                while i < n and self.raw[i] != "\n":
                    i += 1
            elif c == "/" and i + 1 < n and self.raw[i + 1] == "*":
                i += 2
                while i < n and not self.raw.startswith("*/", i):
                    if self.raw[i] == "\n":
                        lineno += 1
                    i += 1
                i += 2
            elif c == '"':
                start_line = lineno
                i += 1
                buf = []
                while i < n and self.raw[i] != '"':
                    if self.raw[i] == "\\" and i + 1 < n:
                        buf.append(self.raw[i : i + 2])
                        i += 2
                    else:
                        if self.raw[i] == "\n":
                            lineno += 1
                        buf.append(self.raw[i])
                        i += 1
                i += 1
                yield start_line, "".join(buf)
            elif c == "'":
                i += 1
                while i < n and self.raw[i] != "'":
                    i += 2 if self.raw[i] == "\\" else 1
                i += 1
            else:
                i += 1


# --------------------------------------------------------------------------
# Rule: clock
# --------------------------------------------------------------------------

CLOCK_SHIM = Path("src") / "core" / "clock.hpp"

CLOCK_TOKENS = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock|gettimeofday"
    r"|clock_gettime|timespec_get|localtime|gmtime(?:_r)?"
    r"|random_device|srand|rand)\b"
)
# `rand` must be a call (or std::rand) — not a substring guard; the \b above
# already excludes mt19937 etc. But `operator` overloads named rand don't
# exist here, so a bare match is enough.


def check_clock(sf: SourceFile, rel: Path):
    if rel == CLOCK_SHIM:
        return
    for i, line in enumerate(sf.code_lines, start=1):
        for m in CLOCK_TOKENS.finditer(line):
            if sf.allowed(i, "clock"):
                continue
            yield Violation(
                rel,
                i,
                "clock",
                f"'{m.group(1)}' outside the timing shim "
                f"(route through src/core/clock.hpp)",
            )


# --------------------------------------------------------------------------
# Rule: atomic-order
# --------------------------------------------------------------------------

ATOMIC_OPS = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set"
    r"|clear|wait|notify_one|notify_all)\s*\("
)
ORDER_FREE_OPS = {"notify_one", "notify_all"}  # take no order argument
ATOMIC_DECL = re.compile(r"\batomic\s*<[^;{}]*>\s+(\w+)")
ATOMIC_RMW_SUGAR = re.compile(r"(\+\+|--|\+=|-=|\|=|&=|\^=)")


def _call_argument_span(text: str, open_paren: int):
    """Return the argument substring of the call starting at `open_paren`."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j]
    return text[open_paren + 1 :]


def check_atomic_order(sf: SourceFile, rel: Path):
    # Scope: the lock-free executor sources (src/exec/). Tests may use the
    # default seq_cst sugar freely — only the reviewed implementation must
    # spell its orderings. Fixtures opt in via their exec/ subdirectory.
    parts = rel.parts
    if "exec" not in parts:
        return
    if parts and parts[0] == "tests" and "fixtures" not in parts:
        return
    atomics = set(ATOMIC_DECL.findall(sf.code))
    # Operation calls missing an explicit memory_order argument.
    for m in ATOMIC_OPS.finditer(sf.code):
        op = m.group(1)
        if op in ORDER_FREE_OPS:
            continue
        # Only check calls on known atomic members/locals: the receiver token
        # immediately before the dot must be a declared atomic (or end in an
        # atomic's name) — keeps vector::clear() etc. out of scope.
        recv = re.search(r"(\w+)\s*$", sf.code[: m.start()])
        if recv is None or recv.group(1) not in atomics:
            continue
        args = _call_argument_span(sf.code, sf.code.index("(", m.end() - 1))
        lineno = sf.code.count("\n", 0, m.start()) + 1
        if "memory_order" in args:
            continue
        if sf.allowed(lineno, "atomic-order"):
            continue
        yield Violation(
            rel,
            lineno,
            "atomic-order",
            f"atomic .{op}() without an explicit std::memory_order",
        )
    # Operator sugar on declared atomics (x++, x += …): always implicit
    # seq_cst, always banned in exec code.
    for name in atomics:
        for m in re.finditer(
            rf"(\b{re.escape(name)}\s*(\+\+|--|\+=|-=|\|=|&=|\^=))"
            rf"|((\+\+|--)\s*{re.escape(name)}\b)",
            sf.code,
        ):
            lineno = sf.code.count("\n", 0, m.start()) + 1
            if sf.allowed(lineno, "atomic-order"):
                continue
            yield Violation(
                rel,
                lineno,
                "atomic-order",
                f"operator form on atomic '{name}' hides its memory order",
            )


# --------------------------------------------------------------------------
# Rule: layout-state
# --------------------------------------------------------------------------

JOURNALED_MEMBERS = (
    "board_",
    "obstacles_",
    "traces_",
    "pairs_",
    "groups_",
    "areas_",
    "next_id_",
)
# Rebuild/bookkeeping paths that legitimately write members without
# journaling: whole-object assignment and the journal machinery itself.
LAYOUT_EXEMPT_FNS = {"assign", "record", "check_mutable", "Layout", "operator="}
LAYOUT_FN_DEF = re.compile(r"\bLayout::(~?\w+|operator=?[^\s(]*)\s*\([^;]*?\)[^;{]*\{")
CONST_CAST_LAYOUT = re.compile(r"const_cast\s*<[^>]*\bLayout\b[^>]*>")


def _function_body(text: str, brace: int) -> str:
    depth = 0
    for j in range(brace, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[brace : j + 1]
    return text[brace:]


def check_layout_state(sf: SourceFile, rel: Path):
    # (a) Everywhere: const_cast-ing a Layout launders the recorded-mutator
    # discipline away; there is no good reason to ever do it.
    for m in CONST_CAST_LAYOUT.finditer(sf.code):
        lineno = sf.code.count("\n", 0, m.start()) + 1
        if sf.allowed(lineno, "layout-state"):
            continue
        yield Violation(
            rel,
            lineno,
            "layout-state",
            "const_cast on a Layout bypasses the recorded-mutator journal",
        )
    # (b) In any file with out-of-class Layout member definitions (the
    # implementation): a member function that writes a journaled container
    # must be a recorded mutator.
    # A write is an assignment (plain or through an index) or a mutating
    # container call; bare indexing/.at() reads don't count.
    writer = re.compile(
        r"\b(" + "|".join(JOURNALED_MEMBERS) + r")\s*(\[[^\]]*\]\s*)?"
        r"(=[^=]|\.\s*(push_back|emplace|emplace_back|erase|insert|clear|pop_back)\s*\()"
    )
    for m in LAYOUT_FN_DEF.finditer(sf.code):
        name = m.group(1)
        if name in LAYOUT_EXEMPT_FNS or name.startswith("~"):
            continue
        body = _function_body(sf.code, m.end() - 1)
        w = writer.search(body)
        if w is None:
            continue
        if "record(" in body or "check_mutable(" in body:
            continue
        lineno = sf.code.count("\n", 0, m.start()) + 1
        if sf.allowed(lineno, "layout-state"):
            continue
        yield Violation(
            rel,
            lineno,
            "layout-state",
            f"Layout::{name} writes journaled state ('{w.group(1)}') without "
            f"record()/check_mutable()",
        )


# --------------------------------------------------------------------------
# Rule: cast
# --------------------------------------------------------------------------

RAW_CAST = re.compile(r"\b(reinterpret_cast|const_cast)\s*<")


def check_cast(sf: SourceFile, rel: Path):
    for i, line in enumerate(sf.code_lines, start=1):
        for m in RAW_CAST.finditer(line):
            if sf.allowed(i, "cast"):
                continue
            yield Violation(
                rel,
                i,
                "cast",
                f"{m.group(1)} requires an invariant comment with "
                f"'lmr-lint: allow(cast)'",
            )


# --------------------------------------------------------------------------
# Rule: fault-sites
# --------------------------------------------------------------------------

FAULT_REGISTRY = Path("src") / "fault" / "fault_plan.cpp"
SITE_PREFIX = re.compile(r"^(extend|sweep|session):")
SITE_GRAMMAR = [
    re.compile(r"^extend:[^/\s]+/g\d+/m\d+$"),
    re.compile(r"^sweep:[^/\s]+/g\d+$"),
    re.compile(r"^session:apply:[^\s/]+$"),
    # Glob patterns: a site prefix followed by a '*' tail is how plans
    # target families of sites ("extend:sess/*", "session:apply:*").
    re.compile(r"^(extend|sweep|session:apply):[^\s]*\*$"),
]


def check_fault_sites(sf: SourceFile, rel: Path):
    is_registry = rel == FAULT_REGISTRY
    for lineno, lit in sf.string_literals():
        if not SITE_PREFIX.match(lit):
            continue
        # The registry builds keys from bare prefixes; only it may hold them.
        if is_registry and lit in ("extend:", "sweep:", "session:apply:"):
            continue
        if any(g.match(lit) for g in SITE_GRAMMAR):
            continue
        if sf.allowed(lineno, "fault-sites"):
            continue
        yield Violation(
            rel,
            lineno,
            "fault-sites",
            f'"{lit}" does not parse as a fault site '
            f"(extend:<scope>/g<N>/m<N> | sweep:<scope>/g<N> | "
            f"session:apply:<scope> | <prefix>…*)",
        )


def check_fault_registry(root: Path):
    """The builders the grammar mirrors must still exist in the registry."""
    path = root / FAULT_REGISTRY
    if not path.is_file():
        yield Violation(FAULT_REGISTRY, 1, "fault-sites", "fault-plan registry missing")
        return
    text = path.read_text(encoding="utf-8", errors="replace")
    for builder, prefix in (
        ("extend_site", '"extend:"'),
        ("sweep_site", '"sweep:"'),
        ("apply_site", '"session:apply:"'),
    ):
        if builder not in text or prefix not in text:
            yield Violation(
                FAULT_REGISTRY,
                1,
                "fault-sites",
                f"site builder {builder} / prefix {prefix} missing from the "
                f"registry — grammar and builders drifted apart",
            )


# --------------------------------------------------------------------------
# Rule: volatile-keys
# --------------------------------------------------------------------------

STRIP_PY = Path("tools") / "strip_volatile.py"
STRIP_CPP = Path("src") / "bench_harness" / "report.cpp"


def _python_volatile_keys(text: str):
    m = re.search(r"VOLATILE_KEYS\s*=\s*\{([^}]*)\}", text)
    if m is None:
        return None
    return set(re.findall(r'"([^"]+)"', m.group(1)))


def _cpp_volatile_keys(text: str):
    m = re.search(r"Json strip_volatile\(.*?\n\}", text, re.S)
    if m is None:
        return None
    return set(re.findall(r'key\s*==\s*"([^"]+)"', m.group(0)))


def check_volatile_keys(root: Path):
    py_path, cpp_path = root / STRIP_PY, root / STRIP_CPP
    if not py_path.is_file() or not cpp_path.is_file():
        yield Violation(STRIP_PY, 1, "volatile-keys", "strip-volatile twin missing")
        return
    py_text = py_path.read_text(encoding="utf-8", errors="replace")
    cpp_text = cpp_path.read_text(encoding="utf-8", errors="replace")
    py_keys = _python_volatile_keys(py_text)
    cpp_keys = _cpp_volatile_keys(cpp_text)
    if py_keys is None:
        yield Violation(STRIP_PY, 1, "volatile-keys", "VOLATILE_KEYS set not found")
        return
    if cpp_keys is None:
        yield Violation(STRIP_CPP, 1, "volatile-keys", "strip_volatile() not found")
        return
    for key in sorted(py_keys - cpp_keys):
        yield Violation(
            STRIP_CPP,
            1,
            "volatile-keys",
            f"'{key}' is volatile in strip_volatile.py but not in report.cpp",
        )
    for key in sorted(cpp_keys - py_keys):
        yield Violation(
            STRIP_PY,
            1,
            "volatile-keys",
            f"'{key}' is volatile in report.cpp but not in strip_volatile.py",
        )
    if 'endswith("_s")' not in py_text:
        yield Violation(
            STRIP_PY, 1, "volatile-keys", "the *_s-suffix rule is missing"
        )
    if '"_s"' not in cpp_text:
        yield Violation(
            STRIP_CPP, 1, "volatile-keys", "the *_s-suffix rule is missing"
        )


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

PER_FILE_RULES = (
    check_clock,
    check_atomic_order,
    check_layout_state,
    check_cast,
    check_fault_sites,
)


def lint_file(path: Path, rel: Path):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Violation(rel, 0, "io", str(e))]
    sf = SourceFile(path, text)
    out = []
    for rule in PER_FILE_RULES:
        out.extend(rule(sf, rel))
    return out


def iter_sources(root: Path, targets):
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_file():
            yield p
        elif p.is_dir():
            yield from sorted(
                q
                for q in p.rglob("*")
                if q.suffix in CXX_SUFFIXES
                and q.is_file()
                # The lint fixtures are violations on purpose; only the
                # self-test reads them.
                and "fixtures" not in q.parts
            )


def run_lint(root: Path, targets):
    violations = []
    for path in iter_sources(root, targets):
        try:
            rel = path.relative_to(root)
        except ValueError:
            rel = path
        violations.extend(lint_file(path, rel))
    violations.extend(check_fault_registry(root))
    violations.extend(check_volatile_keys(root))
    return violations


# --------------------------------------------------------------------------
# Self-test over fixtures
# --------------------------------------------------------------------------

FIXTURES = Path("tests") / "tools" / "fixtures"


def self_test(root: Path) -> int:
    fixture_dir = root / FIXTURES
    if not fixture_dir.is_dir():
        print(f"self-test: fixture directory missing: {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in sorted(fixture_dir.rglob("bad_*")):
        # bad_<rule>[__variant].<ext> must trigger at least one <rule> hit.
        rule = path.stem[len("bad_") :].split("__")[0].replace("_", "-")
        hits = [v for v in lint_file(path, path.relative_to(root)) if v.rule == rule]
        if not hits:
            print(f"self-test FAIL: {path.name}: rule '{rule}' did not fire")
            failures += 1
        else:
            print(f"self-test ok: {path.name}: {len(hits)} x {rule}")
    for path in sorted(fixture_dir.rglob("good_*")):
        hits = lint_file(path, path.relative_to(root))
        if hits:
            for v in hits:
                print(f"self-test FAIL: {path.name}: unexpected {v}")
            failures += 1
        else:
            print(f"self-test ok: {path.name}: clean")
    # The repo-level cross-checks must pass on the live tree.
    for v in list(check_fault_registry(root)) + list(check_volatile_keys(root)):
        print(f"self-test FAIL: live tree: {v}")
        failures += 1
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all fixtures behaved")
    return 0


def main(argv) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("targets", nargs="*", default=None)
    ap.add_argument("--root", default=None, help="repo root (default: script/../)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)
    root = Path(args.root).resolve() if args.root else Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(root)
    targets = args.targets or ["src", "tests", "bench"]
    violations = run_lint(root, targets)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
