#!/usr/bin/env python3
"""Strip the volatile context from a bench result document.

The single script-side twin of ``lmr::bench::strip_volatile``
(src/bench_harness/report.cpp): removes the ``run`` object, the
``scaling``, ``drc_overlap``, ``backend``, ``edit_storm`` and ``service``
sections, the parallelism context (``threads_used``, ``pool_policy``) and
every ``*_s``-suffixed key. Two
runs with the same seeds — at any thread count or DRC schedule — must
strip to identical documents. The bench_harness unit tests diff this
script's output against the C++ implementation byte for byte, so the two
cannot drift apart silently.

Usage:
    strip_volatile.py FILE            # print the stripped document
    strip_volatile.py FILE FILE       # compare: exit 0 iff identical
"""

import json
import sys

VOLATILE_KEYS = {
    "run",
    "scaling",
    "drc_overlap",
    "backend",
    "edit_storm",
    "service",
    "fault_storm",
    "threads_used",
    "pool_policy",
}


def strip(obj):
    if isinstance(obj, dict):
        return {
            k: strip(v)
            for k, v in obj.items()
            if k not in VOLATILE_KEYS and not k.endswith("_s")
        }
    if isinstance(obj, list):
        return [strip(x) for x in obj]
    return obj


def main(argv):
    if len(argv) == 2:
        json.dump(strip(json.load(open(argv[1]))), sys.stdout, indent=2)
        print()
        return 0
    if len(argv) == 3:
        a, b = (strip(json.load(open(p))) for p in argv[1:3])
        if a != b:
            print(f"stripped documents differ: {argv[1]} vs {argv[2]}", file=sys.stderr)
            return 1
        print("stripped documents identical")
        return 0
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
