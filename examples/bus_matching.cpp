/// \file bus_matching.cpp
/// Full pipeline on a parallel bus: region assignment (§III) splits a
/// corridor bundle between six traces of different initial lengths, then the
/// group matcher meanders each trace to the common target inside its own
/// region. This is the end-to-end flow of Fig. 2.

#include <cstdio>
#include <filesystem>

#include "assign/region_assigner.hpp"
#include "layout/drc_checker.hpp"
#include "pipeline/group_matcher.hpp"
#include "viz/render.hpp"

int main() {
  lmr::drc::DesignRules rules;
  rules.gap = 1.0;
  rules.obs = 0.5;
  rules.protect = 0.5;
  rules.trace_width = 0.2;

  // Six bus members with staggered initial lengths (pre-routed detours).
  lmr::layout::Layout l;
  std::vector<lmr::layout::Trace> traces(6);
  std::vector<lmr::layout::TraceId> ids;
  for (int i = 0; i < 6; ++i) {
    const double y = 4.0 + 7.0 * i;
    lmr::layout::Trace& t = traces[static_cast<std::size_t>(i)];
    t.name = "D" + std::to_string(i);
    t.width = rules.trace_width;
    if (i % 2 == 0) {
      t.path = lmr::geom::Polyline{{{0, y}, {60, y}}};
    } else {
      // Slightly longer members with a mid jog.
      t.path = lmr::geom::Polyline{
          {{0, y}, {25, y}, {28, y + 2.0}, {31, y}, {60, y}}};
    }
  }

  // Obstacles in the bundle, between the bus members.
  std::vector<lmr::geom::Polygon> obstacles{
      lmr::geom::Polygon::regular({20, 7.5}, 1.0, 8),
      lmr::geom::Polygon::regular({40, 21.5}, 1.0, 8),
  };

  // Region assignment: one corridor bundle, one region budget per trace.
  lmr::assign::CorridorSpec spec;
  spec.bundle = {{0, 0}, {60, 46}};
  const double target = 78.0;
  for (auto& t : traces) spec.traces.push_back(&t);
  spec.targets.assign(6, target);
  spec.obstacles = obstacles;
  spec.rules = rules;
  const lmr::assign::CorridorAssignment assignment = lmr::assign::assign_corridors(spec);
  std::printf("region assignment: %s\n", assignment.feasible ? "feasible" : "INFEASIBLE");
  if (!assignment.feasible) return 1;

  lmr::layout::MatchGroup group;
  group.name = "bus";
  group.target_length = target;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto id = l.add_trace(traces[i]);
    ids.push_back(id);
    l.set_routable_area(id, assignment.areas[i]);
    group.members.push_back({lmr::layout::MemberKind::SingleEnded, id});
  }
  for (const auto& o : obstacles) l.add_obstacle({o, "via"});
  l.add_group(group);

  // Match the whole group.
  lmr::pipeline::GroupMatcher matcher(l, rules);
  const lmr::pipeline::GroupReport report = matcher.match_group(0);

  std::printf("group '%s': target %.2f\n", report.group_name.c_str(), report.target);
  std::printf("  initial errors: max %.2f%%  avg %.2f%%\n", report.initial_max_error_pct,
              report.initial_avg_error_pct);
  std::printf("  final errors:   max %.4f%% avg %.4f%%  (runtime %.2fs)\n",
              report.max_error_pct, report.avg_error_pct, report.runtime_s);
  for (const auto& m : report.members) {
    std::printf("  %-4s %8.3f -> %8.3f  (%d patterns)%s\n", m.name.c_str(),
                m.initial_length, m.final_length, m.patterns,
                m.reached ? "" : "  [short]");
  }

  // Inter-trace DRC across the whole board (regions are disjoint, so this
  // must be clean).
  lmr::layout::DrcChecker checker;
  const auto violations = checker.check_layout(l, rules);
  std::printf("layout DRC violations: %zu\n", violations.size());

  std::filesystem::create_directories("out");
  lmr::viz::render_layout(l, "out/bus_matching.svg");
  std::printf("wrote out/bus_matching.svg\n");
  return violations.empty() ? 0 : 1;
}
