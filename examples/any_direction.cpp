/// \file any_direction.cpp
/// The headline capability: length matching of traces routed at arbitrary
/// angles, preserving the original routing. A three-leg trace runs at 30,
/// -20 and 75 degrees through a rotated corridor with vias; the extender
/// meanders each leg in its own local frame.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/trace_extender.hpp"
#include "layout/drc_checker.hpp"
#include "viz/render.hpp"

namespace {

lmr::geom::Vec2 polar(double deg) {
  const double a = deg * M_PI / 180.0;
  return {std::cos(a), std::sin(a)};
}

}  // namespace

int main() {
  lmr::drc::DesignRules rules;
  rules.gap = 0.8;
  rules.obs = 0.4;
  rules.protect = 0.4;
  rules.trace_width = 0.15;

  // Any-direction trace: three legs at 30, -20 and 75 degrees.
  const lmr::geom::Point a{0, 0};
  const lmr::geom::Point b = a + polar(30) * 22.0;
  const lmr::geom::Point c = b + polar(-20) * 18.0;
  const lmr::geom::Point d = c + polar(75) * 16.0;
  lmr::layout::Trace trace;
  trace.name = "slant";
  trace.width = rules.trace_width;
  trace.path = lmr::geom::Polyline{{a, b, c, d}};

  // Generous board area with a few vias near the path.
  lmr::layout::RoutableArea area;
  area.outline = lmr::geom::Polygon::rect({{-8, -12}, {50, 32}});
  area.holes.push_back(lmr::geom::Polygon::regular(b + polar(120) * 3.0, 0.8, 8));
  area.holes.push_back(lmr::geom::Polygon::regular(c + polar(90) * 3.5, 0.8, 8));
  area.holes.push_back(lmr::geom::Polygon::regular({18.0, -3.0}, 0.8, 8));

  const double initial = trace.length();
  const double target = initial * 1.8;
  lmr::core::TraceExtender ext(rules, area);
  const auto stats = ext.extend(trace, target);
  std::printf("any-direction trace: %.3f -> %.3f (target %.3f, %s)\n", initial,
              stats.final_length, target, stats.reached ? "matched" : "short");

  // The original corners must survive (preserved original routing).
  int corners_kept = 0;
  for (const auto& p : trace.path.points()) {
    for (const auto& q : {a, b, c, d}) {
      if (lmr::geom::almost_equal(p, q, 1e-6)) ++corners_kept;
    }
  }
  std::printf("original route nodes preserved: %d / 4\n", corners_kept);

  lmr::layout::DrcChecker checker;
  const auto violations = checker.check_trace(trace, rules);
  std::printf("DRC violations: %zu\n", violations.size());

  std::filesystem::create_directories("out");
  lmr::layout::Layout l;
  const auto id = l.add_trace(trace);
  l.set_routable_area(id, area);
  for (const auto& h : area.holes) l.add_obstacle({h, "via"});
  lmr::viz::render_layout(l, "out/any_direction.svg");
  std::printf("wrote out/any_direction.svg\n");
  return stats.reached && violations.empty() && corners_kept == 4 ? 0 : 1;
}
