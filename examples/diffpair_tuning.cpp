/// \file diffpair_tuning.cpp
/// MSDTW on a decoupled differential pair (§V): merge the imperfectly
/// coupled pair into a median trace, length-match the median under virtual
/// DRC, restore the pair and compensate residual intra-pair skew.

#include <cstdio>
#include <filesystem>

#include "core/trace_extender.hpp"
#include "dtw/pair_restore.hpp"
#include "viz/render.hpp"
#include "workload/diffpair_cases.hpp"

int main() {
  auto c = lmr::workload::decoupled_pair_case();
  std::printf("pair '%s': pitch %.2f, P %.3f / N %.3f (decoupled: tiny pattern + DRAs)\n",
              c.pair.name.c_str(), c.pair.pitch, c.pair.positive.path.length(),
              c.pair.negative.path.length());

  // 1. Merge via MSDTW with the ascending DRA rule set.
  lmr::dtw::MergedPair merged = lmr::dtw::merge_pair(c.pair, c.sub_rules, c.rule_set);
  std::printf("MSDTW: %zu matched pairs over %d rounds; median %.3f\n",
              merged.matching.pairs.size(), merged.matching.rounds_run,
              merged.median.path.length());
  int filtered = 0;
  for (const bool b : merged.matching.n_paired) filtered += b ? 0 : 1;
  std::printf("filtered unpaired traceN nodes (tiny pattern): %d\n", filtered);

  // 2. Length-match the median under the virtual rules.
  const double target = merged.median.path.length() + 18.0;
  lmr::core::TraceExtender ext(merged.virtual_rules, c.area);
  const auto stats = ext.extend(merged.median, target);
  std::printf("median matched: %.3f -> %.3f (target %.3f)\n", stats.initial_length,
              stats.final_length, target);

  // 3. Restore the pair and compensate skew.
  lmr::layout::DiffPair restored =
      lmr::dtw::restore_pair(merged.median, c.pair.pitch, c.sub_rules.trace_width);
  const double skew = lmr::dtw::compensate_skew(restored, c.sub_rules);
  std::printf("restored pair: P %.3f / N %.3f (residual skew %.4f)\n",
              restored.positive.path.length(), restored.negative.path.length(), skew);

  // 4. Render.
  std::filesystem::create_directories("out");
  lmr::layout::Layout l;
  restored.name = c.pair.name;
  l.add_pair(restored);
  lmr::viz::render_layout(l, "out/diffpair_tuning.svg");
  std::printf("wrote out/diffpair_tuning.svg\n");
  return stats.reached ? 0 : 1;
}
