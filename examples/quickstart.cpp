/// \file quickstart.cpp
/// Minimal lmroute usage: define rules, a trace and its routable area, and
/// length-match it to a target with one `pipeline::Router::route()` call —
/// the facade runs the whole paper flow (DP extension, Eq. 19 accounting,
/// final DRC sweep). Prints before/after stats and writes an SVG.
///
///   ./quickstart [target_length]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "pipeline/router.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  // 1. Design rules (Fig. 1 of the paper): gap, obstacle clearance, minimum
  //    segment length, trace width.
  lmr::drc::DesignRules rules;
  rules.gap = 1.0;
  rules.obs = 0.5;
  rules.protect = 0.5;
  rules.trace_width = 0.2;

  // 2. A routed trace that is too short for its matching group.
  lmr::layout::Trace trace;
  trace.name = "DQ3";
  trace.width = rules.trace_width;
  trace.path = lmr::geom::Polyline{{{0, 0}, {28, 0}, {40, 6}}};  // any-direction tail

  // 3. The routable area assigned to it (a corridor with two vias).
  lmr::layout::RoutableArea area;
  area.outline = lmr::geom::Polygon{{{-2, -6}, {42, -6}, {42, 12}, {-2, 12}}};
  area.holes.push_back(lmr::geom::Polygon::regular({12, 2.5}, 1.0, 8));
  area.holes.push_back(lmr::geom::Polygon::regular({24, -2.5}, 1.0, 8));

  const double target = argc > 1 ? std::atof(argv[1]) : 70.0;

  // 4. Assemble the layout: trace + area + a one-member matching group.
  lmr::layout::Layout l;
  const auto id = l.add_trace(trace);
  l.set_routable_area(id, area);
  for (const auto& h : area.holes) l.add_obstacle({h, "via"});
  lmr::layout::MatchGroup group;
  group.name = "quickstart";
  group.target_length = target;
  group.members.push_back({lmr::layout::MemberKind::SingleEnded, id});
  l.add_group(group);

  // 5. Length-match + DRC-verify in one call. The facade throws
  //    std::invalid_argument for unroutable inputs (e.g. a target below the
  //    current trace length).
  const lmr::pipeline::Router router(rules);
  lmr::pipeline::RouteResult result;
  try {
    result = router.route(l);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "routing failed: %s\n", e.what());
    return 2;
  }

  const lmr::pipeline::NetResult& net = result.nets.front();
  std::printf("trace '%s': %.3f -> %.3f (target %.3f, %s)\n",
              net.member.name.c_str(), net.member.initial_length,
              net.member.final_length, net.member.target,
              net.member.reached ? "matched" : "NOT matched");
  std::printf("patterns inserted: %d in %.3f s\n", net.member.patterns,
              net.member.runtime_s);
  std::printf("DRC violations: %zu\n", result.violation_count());

  // 6. Render.
  std::filesystem::create_directories("out");
  lmr::viz::render_layout(l, "out/quickstart.svg");
  std::printf("wrote out/quickstart.svg\n");
  return result.ok() ? 0 : 1;
}
