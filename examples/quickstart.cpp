/// \file quickstart.cpp
/// Minimal lmroute usage: define rules, a trace and its routable area, and
/// length-match it to a target. Prints before/after stats and writes an SVG.
///
///   ./quickstart [target_length]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/trace_extender.hpp"
#include "layout/drc_checker.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  // 1. Design rules (Fig. 1 of the paper): gap, obstacle clearance, minimum
  //    segment length, trace width.
  lmr::drc::DesignRules rules;
  rules.gap = 1.0;
  rules.obs = 0.5;
  rules.protect = 0.5;
  rules.trace_width = 0.2;

  // 2. A routed trace that is too short for its matching group.
  lmr::layout::Trace trace;
  trace.name = "DQ3";
  trace.width = rules.trace_width;
  trace.path = lmr::geom::Polyline{{{0, 0}, {28, 0}, {40, 6}}};  // any-direction tail

  // 3. The routable area assigned to it (a corridor with two vias).
  lmr::layout::RoutableArea area;
  area.outline = lmr::geom::Polygon{{{-2, -6}, {42, -6}, {42, 12}, {-2, 12}}};
  area.holes.push_back(lmr::geom::Polygon::regular({12, 2.5}, 1.0, 8));
  area.holes.push_back(lmr::geom::Polygon::regular({24, -2.5}, 1.0, 8));

  const double target = argc > 1 ? std::atof(argv[1]) : 70.0;

  // 4. Length-match.
  lmr::core::TraceExtender extender(rules, area);
  const lmr::core::ExtendStats stats = extender.extend(trace, target);

  std::printf("trace '%s': %.3f -> %.3f (target %.3f, %s)\n", trace.name.c_str(),
              stats.initial_length, stats.final_length, stats.target,
              stats.reached ? "matched" : "NOT matched");
  std::printf("patterns inserted: %d over %d segment extensions\n",
              stats.patterns_inserted, stats.segments_processed);

  // 5. Verify with the DRC oracle (always do this in production flows).
  lmr::layout::DrcChecker checker;
  const auto violations = checker.check_trace(trace, rules);
  std::printf("DRC violations: %zu\n", violations.size());

  // 6. Render.
  std::filesystem::create_directories("out");
  lmr::layout::Layout l;
  const auto id = l.add_trace(trace);
  l.set_routable_area(id, area);
  for (const auto& h : area.holes) l.add_obstacle({h, "via"});
  lmr::viz::render_layout(l, "out/quickstart.svg");
  std::printf("wrote out/quickstart.svg\n");
  return violations.empty() && stats.reached ? 0 : 1;
}
